// The decoded execution engine (Options.Engine = EngineDecoded).
//
// This is the second of the interpreter's two engines. It executes the
// pre-lowered instruction streams produced by internal/decoded: operand
// resolution is a slice index instead of an interface type-switch,
// globals resolve through the dense slot table, phi prologues are
// straight move lists per CFG edge, and dispatch runs one flat switch
// over pre-classified steps. Activation frames (with their register
// files and phi scratch) come from a process-wide pool and are zeroed
// on reuse, so a campaign of N trials stops allocating O(N · frames).
//
// The engine implements the same observable contract as the legacy
// loop, bit for bit: identical hook sequences and arguments (hooks see
// the original *ir.Instr, so fault targets compare equal across
// engines), identical count-before-execute hang semantics, identical
// trap kinds and positions, identical output formatting, and identical
// snapshot boundaries. Snapshots themselves are engine-neutral — frames
// are captured in IR terms — so state captured under one engine resumes
// under the other. The crosscheck suite holds all of this to zero
// divergence against both the legacy engine and the reference
// evaluator.

package interp

import (
	"context"
	"fmt"
	"sync"

	"trident/internal/decoded"
	"trident/internal/ir"
	"trident/internal/telemetry"
)

// CompileDecoded lowers m for the decoded engine, recording the
// lowering latency as interp.decode_us when reg is non-nil. Campaign
// engines call it once per module and hand the program to every trial
// via Options.Decoded; per-run lowering (a nil Options.Decoded) goes
// through it too.
func CompileDecoded(m *ir.Module, reg *telemetry.Registry) *decoded.Program {
	start := metricsStart(reg)
	p := decoded.Compile(m)
	if reg != nil {
		reg.Histogram("interp.decode_us").Since(start)
	}
	return p
}

// decodedProgram returns the caller-supplied pre-compiled program when
// it matches the module, else lowers on the fly.
func decodedProgram(m *ir.Module, opts Options) *decoded.Program {
	if p := opts.Decoded; p != nil && p.Module == m {
		return p
	}
	return CompileDecoded(m, opts.Metrics)
}

// runDecoded is Run on the decoded engine.
func runDecoded(m *ir.Module, opts Options) (*Result, error) {
	start := metricsStart(opts.Metrics)
	main := m.Func("main")
	if main == nil {
		return nil, fmt.Errorf("interp: module %q has no main", m.Name)
	}
	if len(main.Params) != 0 {
		return nil, fmt.Errorf("interp: main must take no parameters")
	}
	applyDefaults(&opts)
	prog := decodedProgram(m, opts)

	ctx := &Context{Mem: NewMemory(), opts: opts}
	globals, err := initGlobals(ctx, m)
	if err != nil {
		return nil, err
	}

	vm := newDMachine(ctx, prog, globals)
	_, err = vm.runSafe(prog.ByFunc[main])
	res, rerr := finishRun(ctx, err)
	vm.flushPoolMetrics(opts.Metrics)
	recordRun(opts.Metrics, start, 0, ctx, res, rerr)
	return res, rerr
}

// resumeDecoded is Resume on the decoded engine. The snapshot's frames
// are stored in IR terms, so it accepts state captured by either
// engine.
func resumeDecoded(s *Snapshot, opts Options) (*Result, error) {
	applyDefaults(&opts)
	start := metricsStart(opts.Metrics)
	prog := decodedProgram(s.frames[0].fn.Module, opts)
	mem, remap := s.mem.Clone()
	ctx := &Context{
		Mem:        mem,
		DynCount:   s.dynCount,
		DynResults: s.dynResults,
		opts:       opts,
		lines:      s.lines,
		depth:      s.depth,
	}
	ctx.output.WriteString(s.output)
	vm := newDMachine(ctx, prog, s.globals)
	vm.frames = make([]*dframe, len(s.frames))
	for i, fs := range s.frames {
		df := prog.ByFunc[fs.fn]
		if df == nil {
			return nil, fmt.Errorf("interp: resume: function %s is not part of the decoded program", fs.fn.Name)
		}
		bi, ok := df.ByBlock[fs.block]
		if !ok {
			return nil, fmt.Errorf("interp: resume: block %s is not part of function %s", fs.block.Name, fs.fn.Name)
		}
		fr := vm.acquireFrame(df)
		copy(fr.regs, fs.regs)
		copy(fr.params, fs.params)
		fr.blk = &df.Blocks[bi]
		fr.prev = fs.prev
		fr.dip = fs.ip - fr.blk.NPhi
		for _, seg := range fs.allocas {
			fr.allocas = append(fr.allocas, remap[seg])
		}
		vm.frames[i] = fr
	}
	recordResume(opts.Metrics, start)
	_, err := vm.resumeSafe()
	res, rerr := finishRun(ctx, err)
	vm.flushPoolMetrics(opts.Metrics)
	recordRun(opts.Metrics, start, s.dynCount, ctx, res, rerr)
	return res, rerr
}

// dframe is one activation of the decoded engine. Unlike the legacy
// frame it is pooled: acquireFrame recycles retired frames, re-zeroing
// registers and parameters so reuse is observationally identical to a
// fresh allocation.
type dframe struct {
	fn      *decoded.Func
	regs    []uint64
	params  []uint64
	scratch []uint64 // phi staging buffer, sized to fn.MaxPhi
	allocas []*Segment
	blk     *decoded.Block
	prev    *ir.Block // predecessor block, for snapshot capture
	dip     int       // next instruction index within blk.Code
	reused  bool      // came out of the pool at least once (hit/miss stats)
}

// dframePool recycles frames (with their register, parameter and
// scratch arrays) across runs, trials and goroutines.
var dframePool = sync.Pool{New: func() any { return new(dframe) }}

// acquireFrame takes a frame from the pool and readies it for fn.
func (vm *dmachine) acquireFrame(fn *decoded.Func) *dframe {
	fr := dframePool.Get().(*dframe)
	if fr.reused {
		vm.poolHits++
	} else {
		vm.poolMisses++
	}
	fr.prepare(fn)
	return fr
}

// prepare readies a (possibly recycled) frame for fn. Registers and
// parameters are sized and zeroed — pooled reuse must be
// indistinguishable from a fresh allocation, or stale register values
// would leak between trials. The phi scratch is sized without clearing:
// every slot is written before it is read.
func (fr *dframe) prepare(fn *decoded.Func) {
	fr.fn = fn
	fr.blk = nil
	fr.prev = nil
	fr.dip = 0
	fr.regs = resizeZeroed(fr.regs, fn.NumRegs)
	fr.params = resizeZeroed(fr.params, fn.NumParams)
	if cap(fr.scratch) < fn.MaxPhi {
		fr.scratch = make([]uint64, fn.MaxPhi)
	} else {
		fr.scratch = fr.scratch[:fn.MaxPhi]
	}
	fr.allocas = fr.allocas[:0]
}

// resizeZeroed returns s resized to n elements, all zero, reusing its
// backing array when large enough.
func resizeZeroed(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// releaseFrame returns fr to the pool, dropping object references so
// pooled frames do not retain programs or memory segments.
func releaseFrame(fr *dframe) {
	fr.fn = nil
	fr.blk = nil
	fr.prev = nil
	clear(fr.allocas)
	fr.allocas = fr.allocas[:0]
	fr.reused = true
	dframePool.Put(fr)
}

// dmachine executes a decoded program against a shared context — the
// decoded-engine counterpart of machine, with the same explicit-frame
// structure that makes Snapshot/Resume possible.
type dmachine struct {
	ctx     *Context
	prog    *decoded.Program
	globals []uint64
	frames  []*dframe

	cancelCtx context.Context
	cancel    <-chan struct{}

	snapEvery uint64
	nextSnap  uint64

	// poolHits/poolMisses tally frame-pool reuse for this execution,
	// flushed to the metrics registry at run end (never touched on the
	// dispatch path by atomics).
	poolHits   uint64
	poolMisses uint64
}

// newDMachine wires a decoded machine to its context, mirroring
// newMachine.
func newDMachine(ctx *Context, prog *decoded.Program, globals []uint64) *dmachine {
	vm := &dmachine{ctx: ctx, prog: prog, globals: globals}
	if c := ctx.opts.Context; c != nil {
		vm.cancelCtx = c
		vm.cancel = c.Done()
	}
	if ctx.opts.SnapshotInterval > 0 && ctx.opts.OnSnapshot != nil {
		vm.snapEvery = ctx.opts.SnapshotInterval
		vm.nextSnap = ctx.DynCount + vm.snapEvery
	}
	return vm
}

// flushPoolMetrics records the run's frame-pool tallies.
func (vm *dmachine) flushPoolMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	if vm.poolHits > 0 {
		reg.Counter("interp.pool.frame_hits").Add(vm.poolHits)
	}
	if vm.poolMisses > 0 {
		reg.Counter("interp.pool.frame_misses").Add(vm.poolMisses)
	}
	vm.poolHits, vm.poolMisses = 0, 0
}

// runSafe pushes main and drives the loop behind the shared panic
// barrier.
func (vm *dmachine) runSafe(main *decoded.Func) (bits uint64, err error) {
	defer recoverInternal(&err)
	if perr := vm.push(main); perr != nil {
		vm.unwind()
		return 0, perr
	}
	ret, lerr := vm.loop()
	if lerr != nil {
		vm.unwind()
		return 0, lerr
	}
	return ret, nil
}

// resumeSafe drives the loop of an already-populated frame stack.
func (vm *dmachine) resumeSafe() (bits uint64, err error) {
	defer recoverInternal(&err)
	ret, lerr := vm.loop()
	if lerr != nil {
		vm.unwind()
		return 0, lerr
	}
	return ret, nil
}

// push creates and enters a new activation for fn (no arguments: calls
// write arguments into the callee frame inline in the loop).
func (vm *dmachine) push(fn *decoded.Func) error {
	ctx := vm.ctx
	if ctx.depth >= ctx.opts.MaxCallDepth {
		return &Trap{Kind: TrapStackOverflow, Instr: fn.Ref.Entry().Instrs[0]}
	}
	ctx.depth++
	fr := vm.acquireFrame(fn)
	vm.frames = append(vm.frames, fr)
	fr.blk = &fn.Blocks[0]
	if fr.blk.NPhi > 0 {
		return vm.applyEdge(fr, &fr.blk.Edges[fr.blk.EntryEdge])
	}
	return nil
}

// pop releases the top frame's allocas, removes it from the stack and
// recycles it.
func (vm *dmachine) pop() {
	fr := vm.frames[len(vm.frames)-1]
	for _, seg := range fr.allocas {
		vm.ctx.Mem.Release(seg)
	}
	vm.frames[len(vm.frames)-1] = nil
	vm.frames = vm.frames[:len(vm.frames)-1]
	vm.ctx.depth--
	releaseFrame(fr)
}

// unwind pops every remaining frame after an error terminates the loop.
func (vm *dmachine) unwind() {
	for len(vm.frames) > 0 {
		vm.pop()
	}
}

// evalOp resolves an operand slot to its bit pattern.
func (vm *dmachine) evalOp(fr *dframe, o *decoded.Operand) uint64 {
	switch o.Kind {
	case decoded.KindConst:
		return o.Bits
	case decoded.KindReg:
		return fr.regs[o.Idx]
	case decoded.KindParam:
		return fr.params[o.Idx]
	case decoded.KindGlobal:
		return vm.globals[o.Idx]
	default:
		// Same engine-bug semantics as the legacy eval: raise a typed
		// error through the panic barrier.
		panic(&InternalError{Msg: fmt.Sprintf("interp: unknown value kind %T", vm.prog.BadVals[o.Idx])})
	}
}

// applyEdge runs one phi prologue: all sources evaluate against the
// predecessor's register state (into the frame's scratch), then each
// phi counts, truncates, offers the hook and commits, in phi order —
// exactly the legacy enterBlock/finishResult sequence.
func (vm *dmachine) applyEdge(fr *dframe, e *decoded.Edge) error {
	if e.Bad != nil {
		return fmt.Errorf("interp: phi %s has no incoming for block %s",
			e.Bad.Pos(), e.BadPrev)
	}
	ctx := vm.ctx
	scratch := fr.scratch[:len(e.Moves)]
	for i := range e.Moves {
		scratch[i] = vm.evalOp(fr, &e.Moves[i].Src)
	}
	hook := ctx.opts.Hooks.OnResult
	for i := range e.Moves {
		mv := &e.Moves[i]
		ctx.DynCount++
		if ctx.DynCount > ctx.opts.MaxDynInstrs {
			return errHang
		}
		bits := ir.TruncateToWidth(scratch[i], mv.Width)
		ctx.DynResults++
		if hook != nil {
			bits = ir.TruncateToWidth(hook(ctx, mv.Ref, bits), mv.Width)
		}
		fr.regs[mv.Dst] = bits
	}
	return nil
}

// branchTo moves fr to decoded block t, applying phi edge e when the
// target has a prologue.
func (vm *dmachine) branchTo(fr *dframe, t, e int32) error {
	fr.prev = fr.blk.Ref
	fr.blk = &fr.fn.Blocks[t]
	fr.dip = 0
	if e >= 0 {
		return vm.applyEdge(fr, &fr.blk.Edges[e])
	}
	return nil
}

// finish truncates, offers the result to the fault-injection hook,
// counts it, and writes the destination register (non-phi instructions;
// phis go through applyEdge).
func (vm *dmachine) finish(fr *dframe, in *decoded.Instr, bits uint64) {
	if in.Dst < 0 {
		return
	}
	ctx := vm.ctx
	bits = ir.TruncateToWidth(bits, in.Width)
	ctx.DynResults++
	if h := ctx.opts.Hooks.OnResult; h != nil {
		bits = ir.TruncateToWidth(h(ctx, in.Ref, bits), in.Width)
	}
	fr.regs[in.Dst] = bits
}

// loop is the decoded dispatch loop: one flat switch over pre-classified
// steps, with the same per-instruction prologue (snapshot check before
// the count, count before the hang check, cancellation every
// cancelCheckInterval instructions) as the legacy loop.
func (vm *dmachine) loop() (uint64, error) {
	ctx := vm.ctx
	fr := vm.frames[len(vm.frames)-1]
	for {
		if fr.dip >= len(fr.blk.Code) {
			return 0, fmt.Errorf("interp: fell off end of block in %s", fr.fn.Ref.Name)
		}
		in := &fr.blk.Code[fr.dip]
		if vm.snapEvery != 0 && ctx.DynCount >= vm.nextSnap {
			vm.takeSnapshot()
		}
		ctx.DynCount++
		if ctx.DynCount > ctx.opts.MaxDynInstrs {
			return 0, errHang
		}
		if vm.cancel != nil && ctx.DynCount&(cancelCheckInterval-1) == 0 {
			select {
			case <-vm.cancel:
				return 0, fmt.Errorf("interp: run cancelled after %d instructions: %w",
					ctx.DynCount, vm.cancelCtx.Err())
			default:
			}
		}
		if w := ctx.opts.TraceWriter; w != nil {
			fmt.Fprintf(w, "%8d %-24s %s\n", ctx.DynCount, in.Ref.Pos(), ir.FormatInstr(in.Ref))
		}
		switch in.Step {
		case decoded.StepBinary:
			lhs := vm.evalOp(fr, &in.A)
			rhs := vm.evalOp(fr, &in.B)
			if h := ctx.opts.Hooks.OnBinary; h != nil {
				h(ctx, in.Ref, lhs, rhs)
			}
			bits, ok := evalBinary(in.Op, in.OpndType, lhs, rhs)
			if !ok {
				return 0, &Trap{Kind: TrapDivZero, Instr: in.Ref}
			}
			vm.finish(fr, in, bits)
			fr.dip++
		case decoded.StepCmp:
			lhs := vm.evalOp(fr, &in.A)
			rhs := vm.evalOp(fr, &in.B)
			if h := ctx.opts.Hooks.OnBinary; h != nil {
				h(ctx, in.Ref, lhs, rhs)
			}
			vm.finish(fr, in, evalCmp(in.Pred, in.OpndType, lhs, rhs))
			fr.dip++
		case decoded.StepCast:
			src := vm.evalOp(fr, &in.A)
			vm.finish(fr, in, evalCast(in.Op, in.OpndType, in.Type, src))
			fr.dip++
		case decoded.StepSelect:
			var bits uint64
			if vm.evalOp(fr, &in.A)&1 != 0 {
				bits = vm.evalOp(fr, &in.B)
			} else {
				bits = vm.evalOp(fr, &in.C)
			}
			vm.finish(fr, in, bits)
			fr.dip++
		case decoded.StepIntrinsic:
			var bits uint64
			if in.NArgs <= 2 {
				var argbuf [2]float64
				var rawLHS, rawRHS uint64
				if in.NArgs >= 1 {
					rawLHS = vm.evalOp(fr, &in.A)
					argbuf[0] = ir.FloatFromBits(in.A.Type, rawLHS)
				}
				if in.NArgs == 2 {
					rawRHS = vm.evalOp(fr, &in.B)
					argbuf[1] = ir.FloatFromBits(in.B.Type, rawRHS)
				}
				if h := ctx.opts.Hooks.OnBinary; h != nil {
					h(ctx, in.Ref, rawLHS, rawRHS)
				}
				bits = ir.FloatToBits(in.Type, evalIntrinsic(in.Intr, argbuf[:in.NArgs]))
			} else {
				// Over-arity intrinsic (rejected by Verify): replicate the
				// legacy evaluation order, rawRHS tracking the last operand.
				args := make([]float64, len(in.Args))
				var rawLHS, rawRHS uint64
				for i := range in.Args {
					raw := vm.evalOp(fr, &in.Args[i])
					if i == 0 {
						rawLHS = raw
					} else {
						rawRHS = raw
					}
					args[i] = ir.FloatFromBits(in.Args[i].Type, raw)
				}
				if h := ctx.opts.Hooks.OnBinary; h != nil {
					h(ctx, in.Ref, rawLHS, rawRHS)
				}
				bits = ir.FloatToBits(in.Type, evalIntrinsic(in.Intr, args))
			}
			vm.finish(fr, in, bits)
			fr.dip++
		case decoded.StepAlloca:
			seg := ctx.Mem.Allocate("alloca", in.AllocSize)
			fr.allocas = append(fr.allocas, seg)
			vm.finish(fr, in, seg.Base)
			fr.dip++
		case decoded.StepLoad:
			addr := vm.evalOp(fr, &in.A)
			bits, ok := ctx.Mem.Load(in.Elem, addr)
			if !ok {
				return 0, &Trap{Kind: TrapOOBLoad, Instr: in.Ref, Addr: addr}
			}
			if h := ctx.opts.Hooks.OnLoad; h != nil {
				h(ctx, in.Ref, addr, bits)
			}
			vm.finish(fr, in, bits)
			fr.dip++
		case decoded.StepStore:
			bits := vm.evalOp(fr, &in.A)
			addr := vm.evalOp(fr, &in.B)
			if !ctx.Mem.Store(in.Elem, addr, bits) {
				return 0, &Trap{Kind: TrapOOBStore, Instr: in.Ref, Addr: addr}
			}
			if h := ctx.opts.Hooks.OnStore; h != nil {
				h(ctx, in.Ref, addr, bits)
			}
			fr.dip++
		case decoded.StepGep:
			base := vm.evalOp(fr, &in.A)
			idx := ir.SignExtend(vm.evalOp(fr, &in.B), in.IdxWidth)
			vm.finish(fr, in, base+uint64(idx*in.ElemBytes))
			fr.dip++
		case decoded.StepCall:
			callee := in.Callee
			if ctx.depth >= ctx.opts.MaxCallDepth {
				return 0, &Trap{Kind: TrapStackOverflow, Instr: callee.Ref.Entry().Instrs[0]}
			}
			ctx.depth++
			nf := vm.acquireFrame(callee)
			for i := range in.Args {
				nf.params[i] = vm.evalOp(fr, &in.Args[i])
			}
			vm.frames = append(vm.frames, nf)
			nf.blk = &callee.Blocks[0]
			if nf.blk.NPhi > 0 {
				if err := vm.applyEdge(nf, &nf.blk.Edges[nf.blk.EntryEdge]); err != nil {
					return 0, err
				}
			}
			fr = nf
		case decoded.StepRet:
			var ret uint64
			if in.NArgs == 1 {
				ret = vm.evalOp(fr, &in.A)
			}
			vm.pop()
			if len(vm.frames) == 0 {
				return ret, nil
			}
			fr = vm.frames[len(vm.frames)-1]
			// The caller is suspended at its call instruction; deliver the
			// return value as that instruction's result and step past it.
			vm.finish(fr, &fr.blk.Code[fr.dip], ret)
			fr.dip++
		case decoded.StepBr:
			if h := ctx.opts.Hooks.OnBranch; h != nil {
				h(ctx, in.Ref, 0)
			}
			if err := vm.branchTo(fr, in.T0, in.E0); err != nil {
				return 0, err
			}
		case decoded.StepCondBr:
			cond := vm.evalOp(fr, &in.A) & 1
			taken := 1 // false edge
			if cond != 0 {
				taken = 0
			}
			if h := ctx.opts.Hooks.OnBranch; h != nil {
				h(ctx, in.Ref, taken)
			}
			t, e := in.T1, in.E1
			if taken == 0 {
				t, e = in.T0, in.E0
			}
			if err := vm.branchTo(fr, t, e); err != nil {
				return 0, err
			}
		case decoded.StepPrint:
			bits := vm.evalOp(fr, &in.A)
			line := ir.FormatValue(in.OpndType, bits, in.Format)
			ctx.output.WriteString(line)
			ctx.output.WriteByte('\n')
			ctx.lines++
			if h := ctx.opts.Hooks.OnPrint; h != nil {
				h(ctx, in.Ref, line)
			}
			fr.dip++
		case decoded.StepCheck:
			a := vm.evalOp(fr, &in.A)
			b := vm.evalOp(fr, &in.B)
			if a != b {
				return 0, &Trap{Kind: TrapDetected, Instr: in.Ref}
			}
			fr.dip++
		default: // decoded.StepInvalid
			return 0, fmt.Errorf("interp: cannot execute %s at %s", in.Op, in.Ref.Pos())
		}
	}
}

// takeSnapshot captures the current decoded-machine state. The snapshot
// itself is engine-neutral.
func (vm *dmachine) takeSnapshot() {
	reg := vm.ctx.opts.Metrics
	start := metricsStart(reg)
	s := vm.capture()
	recordCapture(reg, start, s)
	vm.nextSnap = vm.ctx.DynCount + vm.snapEvery
	vm.ctx.opts.OnSnapshot(s)
}

// capture deep-copies the machine state into an engine-neutral
// Snapshot: frames are stored in IR terms (function, block, instruction
// pointer), so either engine can resume them.
func (vm *dmachine) capture() *Snapshot {
	ctx := vm.ctx
	mem, remap := ctx.Mem.Clone()
	s := &Snapshot{
		dynCount:   ctx.DynCount,
		dynResults: ctx.DynResults,
		depth:      ctx.depth,
		lines:      ctx.lines,
		output:     ctx.output.String(),
		mem:        mem,
		globals:    vm.globals,
		frames:     make([]frameSnap, len(vm.frames)),
	}
	for i, fr := range vm.frames {
		fs := frameSnap{
			fn:     fr.fn.Ref,
			block:  fr.blk.Ref,
			prev:   fr.prev,
			ip:     fr.dip + fr.blk.NPhi,
			regs:   append([]uint64(nil), fr.regs...),
			params: append([]uint64(nil), fr.params...),
		}
		if len(fr.allocas) > 0 {
			fs.allocas = make([]*Segment, len(fr.allocas))
			for j, seg := range fr.allocas {
				fs.allocas[j] = remap[seg]
			}
		}
		s.frames[i] = fs
	}
	return s
}
