package interp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"strings"

	"trident/internal/decoded"
	"trident/internal/ir"
	"trident/internal/telemetry"
)

// Engine selects the execution engine behind Run and Resume. Both
// engines implement the identical observable contract — hooks, traps,
// counters, snapshots, output — and the crosscheck suite holds them to
// it bit for bit; they differ only in speed.
type Engine string

// Engines.
const (
	// EngineLegacy is the tree-walking explicit-frame machine that
	// decodes operands on every dispatch. The zero Engine value selects
	// it.
	EngineLegacy Engine = "legacy"
	// EngineDecoded executes pre-decoded instruction streams
	// (internal/decoded) with pooled frames: operands are pre-resolved
	// slots, phi prologues are pre-grouped per CFG edge, and activation
	// frames are reused across runs. Campaign engines use it for
	// throughput.
	EngineDecoded Engine = "decoded"
)

// ParseEngine maps a command-line engine name to an Engine. The empty
// string selects the legacy default.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", string(EngineLegacy):
		return EngineLegacy, nil
	case string(EngineDecoded):
		return EngineDecoded, nil
	default:
		return "", fmt.Errorf("interp: unknown engine %q (valid: legacy, decoded)", s)
	}
}

// Engines lists every execution engine, for harnesses that sweep all of
// them.
func Engines() []Engine { return []Engine{EngineLegacy, EngineDecoded} }

// InternalError reports an interpreter-internal failure — an engine bug or
// malformed IR reaching execution — as an ordinary error value instead of
// a process-killing panic. It is distinct from program-level traps: a trap
// models hardware behavior of the simulated program, an InternalError
// means the engine itself misbehaved and the run's outcome is unusable.
type InternalError struct {
	// Msg describes the failure.
	Msg string
	// Recovered is the recovered panic value when the error was converted
	// from a panic (nil for errors raised directly).
	Recovered any
	// Stack is the goroutine stack at recovery time, for diagnostics.
	Stack string
}

// Error implements error.
func (e *InternalError) Error() string { return e.Msg }

// TrapKind classifies hardware-exception-like failures.
type TrapKind uint8

// Trap kinds.
const (
	TrapNone TrapKind = iota
	// TrapOOBLoad is a read outside every live segment.
	TrapOOBLoad
	// TrapOOBStore is a write outside every live segment.
	TrapOOBStore
	// TrapDivZero is an integer division or remainder by zero.
	TrapDivZero
	// TrapStackOverflow is call nesting beyond the configured depth.
	TrapStackOverflow
	// TrapDetected is a duplication check firing: the original and shadow
	// computations disagreed. It terminates the run but is a successful
	// detection, not a crash.
	TrapDetected
)

// String returns a short name for the trap kind.
func (k TrapKind) String() string {
	switch k {
	case TrapOOBLoad:
		return "out-of-bounds load"
	case TrapOOBStore:
		return "out-of-bounds store"
	case TrapDivZero:
		return "division by zero"
	case TrapStackOverflow:
		return "stack overflow"
	case TrapDetected:
		return "error detected by check"
	default:
		return "none"
	}
}

// Trap describes a crash: the failing instruction and the offending
// address when applicable.
type Trap struct {
	Kind  TrapKind
	Instr *ir.Instr
	Addr  uint64
}

// Error implements error.
func (t *Trap) Error() string {
	if t.Kind == TrapOOBLoad || t.Kind == TrapOOBStore {
		return fmt.Sprintf("%s at %#x (%s)", t.Kind, t.Addr, t.Instr.Pos())
	}
	return fmt.Sprintf("%s (%s)", t.Kind, t.Instr.Pos())
}

// errHang signals instruction-budget exhaustion internally.
var errHang = errors.New("interp: instruction budget exhausted")

// Outcome classifies a completed execution.
type Outcome uint8

// Execution outcomes.
const (
	// OutcomeOK means the program ran to completion.
	OutcomeOK Outcome = iota
	// OutcomeCrash means a trap terminated the program.
	OutcomeCrash
	// OutcomeHang means the instruction budget was exhausted.
	OutcomeHang
	// OutcomeDetected means a duplication check caught a corrupted value.
	OutcomeDetected
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeCrash:
		return "crash"
	case OutcomeHang:
		return "hang"
	case OutcomeDetected:
		return "detected"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Hooks are optional observation points. Nil members are skipped. Hooks
// receive the live Context; they must not retain it past the call.
type Hooks struct {
	// OnResult fires after an instruction computes its result and may
	// return altered bits — the fault-injection point. The value has
	// already been truncated to the result type's width; returned bits are
	// truncated again.
	OnResult func(ctx *Context, in *ir.Instr, bits uint64) uint64
	// OnBranch fires when a branch executes; taken is the successor index
	// (0 = true edge; always 0 for unconditional branches).
	OnBranch func(ctx *Context, in *ir.Instr, taken int)
	// OnBinary fires before a two-operand arithmetic, logic or comparison
	// instruction computes, with the operand bit patterns — the value
	// profile used to derive fs masking tuples. It also fires for
	// intrinsics (rhs is 0 for one-argument intrinsics).
	OnBinary func(ctx *Context, in *ir.Instr, lhs, rhs uint64)
	// OnLoad fires after a successful load.
	OnLoad func(ctx *Context, in *ir.Instr, addr, bits uint64)
	// OnStore fires after a successful store.
	OnStore func(ctx *Context, in *ir.Instr, addr, bits uint64)
	// OnPrint fires when a Print instruction emits a line.
	OnPrint func(ctx *Context, in *ir.Instr, line string)
}

// Options configure an execution.
type Options struct {
	// Context, when non-nil, cancels the run: execution stops at the next
	// cancellation checkpoint (every cancelCheckInterval instructions) and
	// Run returns an error wrapping ctx.Err(). Campaign engines use this
	// for cooperative shutdown and per-trial wall-clock watchdogs on top
	// of the instruction budget.
	Context context.Context
	// MaxDynInstrs bounds the number of executed instructions; exceeding
	// it classifies the run as a hang. Zero means the default (50M).
	MaxDynInstrs uint64
	// MaxCallDepth bounds call nesting. Zero means the default (1024).
	MaxCallDepth int
	// Hooks are the observation points.
	Hooks Hooks
	// SnapshotInterval, when nonzero together with OnSnapshot, captures a
	// full machine-state snapshot at the first instruction boundary at or
	// after every SnapshotInterval executed instructions. Snapshots are
	// deep copies: capturing them does not perturb the run, and each can
	// later be resumed any number of times via Resume.
	SnapshotInterval uint64
	// OnSnapshot receives each periodic snapshot. It runs synchronously on
	// the execution goroutine at a clean instruction boundary.
	OnSnapshot func(*Snapshot)
	// TraceWriter, when non-nil, receives one line per executed
	// instruction ("<dyn#> <location> <instruction>") — a debugging aid;
	// it slows execution substantially.
	TraceWriter io.Writer
	// Metrics, when non-nil, receives run-boundary telemetry: run and
	// dynamic-instruction counts, outcome tallies, execution latency, and
	// snapshot capture/restore counts and latencies. Instrumentation sits
	// only at run and snapshot boundaries — the per-instruction dispatch
	// path is untouched — so the overhead is a few atomic updates per
	// execution. Nil disables all recording. See OBSERVABILITY.md for the
	// metric reference.
	Metrics *telemetry.Registry
	// Engine selects the execution engine. The zero value is
	// EngineLegacy.
	Engine Engine
	// Decoded, when non-nil and compiled from the module being run, is
	// the pre-lowered program the decoded engine executes, letting
	// campaign engines pay the lowering cost once per module instead of
	// once per trial. When nil (or compiled from a different module) the
	// decoded engine lowers on the fly. Ignored by the legacy engine.
	Decoded *decoded.Program
}

const (
	defaultMaxDynInstrs = 50_000_000
	defaultMaxCallDepth = 1024
	// cancelCheckInterval is how many instructions execute between
	// cancellation checks; a power of two so the check is a cheap mask.
	cancelCheckInterval = 1024
)

// Context is the mutable machine state exposed to hooks.
type Context struct {
	// Mem is the live address space.
	Mem *Memory
	// DynCount is the number of instructions executed so far.
	DynCount uint64
	// DynResults is the number of register-writing instructions executed
	// so far — the fault-injection sample space.
	DynResults uint64

	opts   Options
	output strings.Builder
	lines  int
	depth  int
}

// Result describes a completed execution.
type Result struct {
	// Outcome classifies the run.
	Outcome Outcome
	// Trap holds crash details when Outcome is OutcomeCrash.
	Trap *Trap
	// Output is the program's observable output (one line per Print).
	Output string
	// OutputLines is the number of Print executions.
	OutputLines int
	// DynInstrs is the number of executed instructions.
	DynInstrs uint64
	// DynResults is the number of executed register-writing instructions.
	DynResults uint64
	// PeakMemBytes is the peak allocated footprint.
	PeakMemBytes uint64
}

// Run executes m's main function under the given options.
func Run(m *ir.Module, opts Options) (*Result, error) {
	if opts.Engine == EngineDecoded {
		return runDecoded(m, opts)
	}
	start := metricsStart(opts.Metrics)
	main := m.Func("main")
	if main == nil {
		return nil, fmt.Errorf("interp: module %q has no main", m.Name)
	}
	if len(main.Params) != 0 {
		return nil, fmt.Errorf("interp: main must take no parameters")
	}
	applyDefaults(&opts)

	ctx := &Context{Mem: NewMemory(), opts: opts}
	globals, err := initGlobals(ctx, m)
	if err != nil {
		return nil, err
	}

	vm := newMachine(ctx, globals)
	_, err = vm.runSafe(main)
	res, err := finishRun(ctx, err)
	recordRun(opts.Metrics, start, 0, ctx, res, err)
	return res, err
}

// initGlobals allocates and initializes the module's globals, returning
// their base addresses as a dense table indexed by ir.Global.Slot. Both
// engines resolve a global operand with one slice index into it, so the
// table's order must match the slots AddGlobal assigned.
func initGlobals(ctx *Context, m *ir.Module) ([]uint64, error) {
	globals := make([]uint64, len(m.Globals))
	for i, g := range m.Globals {
		if g.Slot != i {
			return nil, fmt.Errorf("interp: global @%s has slot %d at position %d (globals must be built with Module.AddGlobal)",
				g.Name, g.Slot, i)
		}
		seg := ctx.Mem.Allocate(g.Name, uint64(g.SizeBytes()))
		globals[i] = seg.Base
		for j, bits := range g.Init {
			if !ctx.Mem.Store(g.Elem, seg.Base+uint64(j*g.Elem.Bytes()), bits) {
				return nil, fmt.Errorf("interp: initializing @%s failed", g.Name)
			}
		}
	}
	return globals, nil
}

// applyDefaults fills in zero-valued execution limits.
func applyDefaults(opts *Options) {
	if opts.MaxDynInstrs == 0 {
		opts.MaxDynInstrs = defaultMaxDynInstrs
	}
	if opts.MaxCallDepth == 0 {
		opts.MaxCallDepth = defaultMaxCallDepth
	}
}

// newMachine wires a machine to its context, including cancellation and
// snapshot configuration from the context's options.
func newMachine(ctx *Context, globals []uint64) *machine {
	vm := &machine{ctx: ctx, globals: globals}
	if c := ctx.opts.Context; c != nil {
		vm.cancelCtx = c
		vm.cancel = c.Done()
	}
	if ctx.opts.SnapshotInterval > 0 && ctx.opts.OnSnapshot != nil {
		vm.snapEvery = ctx.opts.SnapshotInterval
		vm.nextSnap = ctx.DynCount + vm.snapEvery
	}
	return vm
}

// finishRun classifies the execution error into a Result.
func finishRun(ctx *Context, err error) (*Result, error) {
	res := &Result{
		Output:       ctx.output.String(),
		OutputLines:  ctx.lines,
		DynInstrs:    ctx.DynCount,
		DynResults:   ctx.DynResults,
		PeakMemBytes: ctx.Mem.PeakBytes(),
	}
	switch {
	case err == nil:
		res.Outcome = OutcomeOK
	case errors.Is(err, errHang):
		res.Outcome = OutcomeHang
	default:
		var trap *Trap
		if !errors.As(err, &trap) {
			return nil, err
		}
		if trap.Kind == TrapDetected {
			res.Outcome = OutcomeDetected
		} else {
			res.Outcome = OutcomeCrash
		}
		res.Trap = trap
	}
	return res, nil
}

// machine executes IR against a shared context. Unlike a conventional
// tree-walking interpreter, activation frames live on an explicit heap
// stack rather than the Go call stack: the complete execution state —
// frames, registers, memory, program position, counters — is a plain data
// structure, which is what makes Snapshot/Resume possible.
type machine struct {
	ctx *Context
	// globals holds each global's base address at its ir.Global.Slot
	// index — a dense table, so operand resolution is a slice index
	// rather than a pointer-keyed map lookup.
	globals []uint64
	frames  []*frame

	// cancelCtx/cancel mirror Options.Context for the cooperative
	// cancellation checks in the instruction loop (nil = never cancelled).
	cancelCtx context.Context
	cancel    <-chan struct{}

	// snapEvery/nextSnap drive periodic snapshot capture (0 = disabled).
	snapEvery uint64
	nextSnap  uint64
}

// runSafe pushes main and drives the loop behind a panic barrier: any
// panic escaping the instruction loop — an explicit engine assertion or an
// implicit runtime fault such as an out-of-range slice index — is
// converted into a typed *InternalError so one bad trial cannot take down
// a whole campaign process.
func (vm *machine) runSafe(main *ir.Func) (bits uint64, err error) {
	defer recoverInternal(&err)
	if perr := vm.push(main, nil); perr != nil {
		vm.unwind()
		return 0, perr
	}
	ret, lerr := vm.loop()
	if lerr != nil {
		vm.unwind()
		return 0, lerr
	}
	return ret, nil
}

// resumeSafe drives the loop of an already-populated frame stack (Resume)
// behind the same panic barrier as runSafe.
func (vm *machine) resumeSafe() (bits uint64, err error) {
	defer recoverInternal(&err)
	ret, lerr := vm.loop()
	if lerr != nil {
		vm.unwind()
		return 0, lerr
	}
	return ret, nil
}

// recoverInternal converts an escaping panic into a typed
// *InternalError. Both engines defer it around their dispatch loops.
func recoverInternal(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if ie, ok := r.(*InternalError); ok {
		ie.Stack = string(debug.Stack())
		*err = ie
		return
	}
	*err = &InternalError{
		Msg:       fmt.Sprintf("interp: internal panic: %v", r),
		Recovered: r,
		Stack:     string(debug.Stack()),
	}
}

// frame is one function activation. ip indexes the next instruction to
// dispatch within block; for every frame below the top of the stack it
// indexes the call instruction awaiting its callee's return value.
type frame struct {
	fn      *ir.Func
	regs    []uint64
	params  []uint64
	allocas []*Segment
	block   *ir.Block
	prev    *ir.Block
	ip      int
	// scratch is the frame-resident phi staging buffer, grown to the
	// largest prologue entered so far — block entry reuses it instead of
	// allocating per entry, which on phi-heavy loops is an allocation
	// per iteration.
	scratch []uint64
}

// push creates and enters a new activation for fn, running the entry
// block's phi prologue (entry blocks of verified modules have none).
func (vm *machine) push(fn *ir.Func, args []uint64) error {
	ctx := vm.ctx
	if ctx.depth >= ctx.opts.MaxCallDepth {
		return &Trap{Kind: TrapStackOverflow, Instr: fn.Entry().Instrs[0]}
	}
	ctx.depth++
	fr := &frame{fn: fn, regs: make([]uint64, fn.NumInstrs()), params: args, block: fn.Entry()}
	vm.frames = append(vm.frames, fr)
	return vm.enterBlock(fr)
}

// pop releases the top frame's allocas and removes it from the stack.
func (vm *machine) pop() {
	fr := vm.frames[len(vm.frames)-1]
	for _, seg := range fr.allocas {
		vm.ctx.Mem.Release(seg)
	}
	vm.frames[len(vm.frames)-1] = nil
	vm.frames = vm.frames[:len(vm.frames)-1]
	vm.ctx.depth--
}

// unwind pops every remaining frame after an error terminates the loop,
// releasing their allocas.
func (vm *machine) unwind() {
	for len(vm.frames) > 0 {
		vm.pop()
	}
}

// enterBlock runs fr's current block's phi prologue and positions ip at
// the first non-phi instruction. Phis evaluate simultaneously on block
// entry.
func (vm *machine) enterBlock(fr *frame) error {
	block := fr.block
	nPhi := 0
	for _, in := range block.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		nPhi++
	}
	if nPhi > 0 {
		prev := fr.prev
		if cap(fr.scratch) < nPhi {
			fr.scratch = make([]uint64, nPhi)
		}
		vals := fr.scratch[:nPhi]
		for i := 0; i < nPhi; i++ {
			in := block.Instrs[i]
			found := false
			for j, pb := range in.PhiBlocks {
				if pb == prev {
					vals[i] = vm.eval(fr, in.Operands[j])
					found = true
					break
				}
			}
			if !found {
				prevName := "<entry>"
				if prev != nil {
					prevName = prev.Name
				}
				return fmt.Errorf("interp: phi %s has no incoming for block %s",
					in.Pos(), prevName)
			}
		}
		for i := 0; i < nPhi; i++ {
			in := block.Instrs[i]
			if err := vm.finishResult(fr, in, vals[i]); err != nil {
				return err
			}
		}
	}
	fr.ip = nPhi
	return nil
}

// eval resolves an operand to its bit pattern in the current frame.
func (vm *machine) eval(fr *frame, v ir.Value) uint64 {
	switch x := v.(type) {
	case *ir.Const:
		return x.Bits
	case *ir.Instr:
		return fr.regs[x.ID]
	case *ir.Param:
		return fr.params[x.Index]
	case *ir.Global:
		return vm.globals[x.Slot]
	default:
		// A value kind the machine does not know is an engine bug, not a
		// program behavior. eval has no error return (it sits on the hot
		// path of every operand); raise a typed error through the panic
		// barrier in runSafe, which surfaces it as Run's error.
		panic(&InternalError{Msg: fmt.Sprintf("interp: unknown value kind %T", v)})
	}
}

// loop is the instruction dispatch loop. It runs the top frame until the
// program returns from main or fails; calls push frames and returns pop
// them, all without growing the Go call stack.
func (vm *machine) loop() (uint64, error) {
	ctx := vm.ctx
	fr := vm.frames[len(vm.frames)-1]
	for {
		if fr.ip >= len(fr.block.Instrs) {
			return 0, fmt.Errorf("interp: fell off end of block in %s", fr.fn.Name)
		}
		in := fr.block.Instrs[fr.ip]
		if vm.snapEvery != 0 && ctx.DynCount >= vm.nextSnap {
			vm.takeSnapshot()
		}
		ctx.DynCount++
		if ctx.DynCount > ctx.opts.MaxDynInstrs {
			return 0, errHang
		}
		if vm.cancel != nil && ctx.DynCount&(cancelCheckInterval-1) == 0 {
			select {
			case <-vm.cancel:
				return 0, fmt.Errorf("interp: run cancelled after %d instructions: %w",
					ctx.DynCount, vm.cancelCtx.Err())
			default:
			}
		}
		if w := ctx.opts.TraceWriter; w != nil {
			fmt.Fprintf(w, "%8d %-24s %s\n", ctx.DynCount, in.Pos(), ir.FormatInstr(in))
		}
		switch in.Op {
		case ir.OpBr:
			if h := ctx.opts.Hooks.OnBranch; h != nil {
				h(ctx, in, 0)
			}
			fr.prev, fr.block = fr.block, in.Targets[0]
			if err := vm.enterBlock(fr); err != nil {
				return 0, err
			}
		case ir.OpCondBr:
			cond := vm.eval(fr, in.Operands[0]) & 1
			taken := 1 // false edge
			if cond != 0 {
				taken = 0
			}
			if h := ctx.opts.Hooks.OnBranch; h != nil {
				h(ctx, in, taken)
			}
			fr.prev, fr.block = fr.block, in.Targets[taken]
			if err := vm.enterBlock(fr); err != nil {
				return 0, err
			}
		case ir.OpRet:
			var ret uint64
			if len(in.Operands) == 1 {
				ret = vm.eval(fr, in.Operands[0])
			}
			vm.pop()
			if len(vm.frames) == 0 {
				return ret, nil
			}
			fr = vm.frames[len(vm.frames)-1]
			// The caller is suspended at its call instruction; deliver the
			// return value as that instruction's result and step past it.
			if err := vm.finishResult(fr, fr.block.Instrs[fr.ip], ret); err != nil {
				return 0, err
			}
			fr.ip++
		case ir.OpCall:
			args := make([]uint64, len(in.Operands))
			for i, a := range in.Operands {
				args[i] = vm.eval(fr, a)
			}
			if err := vm.push(in.Callee, args); err != nil {
				return 0, err
			}
			fr = vm.frames[len(vm.frames)-1]
		case ir.OpStore:
			bits := vm.eval(fr, in.Operands[0])
			addr := vm.eval(fr, in.Operands[1])
			if !ctx.Mem.Store(in.Elem, addr, bits) {
				return 0, &Trap{Kind: TrapOOBStore, Instr: in, Addr: addr}
			}
			if h := ctx.opts.Hooks.OnStore; h != nil {
				h(ctx, in, addr, bits)
			}
			fr.ip++
		case ir.OpCheck:
			a := vm.eval(fr, in.Operands[0])
			b := vm.eval(fr, in.Operands[1])
			if a != b {
				return 0, &Trap{Kind: TrapDetected, Instr: in}
			}
			fr.ip++
		case ir.OpPrint:
			bits := vm.eval(fr, in.Operands[0])
			line := ir.FormatValue(in.Operands[0].ValueType(), bits, in.Format)
			ctx.output.WriteString(line)
			ctx.output.WriteByte('\n')
			ctx.lines++
			if h := ctx.opts.Hooks.OnPrint; h != nil {
				h(ctx, in, line)
			}
			fr.ip++
		default:
			bits, err := vm.compute(fr, in)
			if err != nil {
				return 0, err
			}
			if err := vm.finishResult(fr, in, bits); err != nil {
				return 0, err
			}
			fr.ip++
		}
	}
}

// finishResult truncates, offers the result to the fault-injection hook,
// counts it, and writes the register.
func (vm *machine) finishResult(fr *frame, in *ir.Instr, bits uint64) error {
	ctx := vm.ctx
	if in.Op == ir.OpPhi {
		// Phis execute as part of block entry; they still count as dynamic
		// register writes (LLFI injects into them too).
		ctx.DynCount++
		if ctx.DynCount > ctx.opts.MaxDynInstrs {
			return errHang
		}
	}
	if !in.HasResult() {
		return nil
	}
	bits = ir.TruncateToWidth(bits, in.Type.Bits())
	ctx.DynResults++
	if h := ctx.opts.Hooks.OnResult; h != nil {
		bits = ir.TruncateToWidth(h(ctx, in, bits), in.Type.Bits())
	}
	fr.regs[in.ID] = bits
	return nil
}

// compute evaluates a non-control, non-memory-write instruction.
func (vm *machine) compute(fr *frame, in *ir.Instr) (uint64, error) {
	ctx := vm.ctx
	switch in.Op {
	case ir.OpAlloca:
		seg := ctx.Mem.Allocate("alloca", uint64(in.Count*in.Elem.Bytes()))
		fr.allocas = append(fr.allocas, seg)
		return seg.Base, nil
	case ir.OpLoad:
		addr := vm.eval(fr, in.Operands[0])
		bits, ok := ctx.Mem.Load(in.Elem, addr)
		if !ok {
			return 0, &Trap{Kind: TrapOOBLoad, Instr: in, Addr: addr}
		}
		if h := ctx.opts.Hooks.OnLoad; h != nil {
			h(ctx, in, addr, bits)
		}
		return bits, nil
	case ir.OpGep:
		base := vm.eval(fr, in.Operands[0])
		idxOp := in.Operands[1]
		idx := ir.SignExtend(vm.eval(fr, idxOp), idxOp.ValueType().Bits())
		return base + uint64(idx*int64(in.Elem.Bytes())), nil
	case ir.OpSelect:
		if vm.eval(fr, in.Operands[0])&1 != 0 {
			return vm.eval(fr, in.Operands[1]), nil
		}
		return vm.eval(fr, in.Operands[2]), nil
	case ir.OpIntrinsic:
		args := make([]float64, len(in.Operands))
		var rawLHS, rawRHS uint64
		for i, a := range in.Operands {
			raw := vm.eval(fr, a)
			if i == 0 {
				rawLHS = raw
			} else {
				rawRHS = raw
			}
			args[i] = ir.FloatFromBits(a.ValueType(), raw)
		}
		if h := ctx.opts.Hooks.OnBinary; h != nil {
			h(ctx, in, rawLHS, rawRHS)
		}
		return ir.FloatToBits(in.Type, evalIntrinsic(in.Intr, args)), nil
	default:
		switch {
		case in.Op.IsBinary():
			lhs := vm.eval(fr, in.Operands[0])
			rhs := vm.eval(fr, in.Operands[1])
			if h := ctx.opts.Hooks.OnBinary; h != nil {
				h(ctx, in, lhs, rhs)
			}
			bits, ok := evalBinary(in.Op, in.Operands[0].ValueType(), lhs, rhs)
			if !ok {
				return 0, &Trap{Kind: TrapDivZero, Instr: in}
			}
			return bits, nil
		case in.Op.IsCmp():
			lhs := vm.eval(fr, in.Operands[0])
			rhs := vm.eval(fr, in.Operands[1])
			if h := ctx.opts.Hooks.OnBinary; h != nil {
				h(ctx, in, lhs, rhs)
			}
			return evalCmp(in.Pred, in.Operands[0].ValueType(), lhs, rhs), nil
		case in.Op.IsCast():
			src := vm.eval(fr, in.Operands[0])
			return evalCast(in.Op, in.Operands[0].ValueType(), in.Type, src), nil
		}
		return 0, fmt.Errorf("interp: cannot execute %s at %s", in.Op, in.Pos())
	}
}
