package interp

import "trident/internal/ir"

// EvalBinary computes a two-operand operation on bit patterns of type t.
// ok is false for integer division/remainder by zero. It is exported for
// the TRIDENT fs sub-model, which re-executes instructions on profiled
// operand samples with single bits flipped to measure masking empirically.
func EvalBinary(op ir.Opcode, t ir.Type, lhs, rhs uint64) (bits uint64, ok bool) {
	return evalBinary(op, t, lhs, rhs)
}

// EvalCmp computes a comparison on bit patterns of type t, yielding 0 or 1.
func EvalCmp(pred ir.Predicate, t ir.Type, lhs, rhs uint64) uint64 {
	return evalCmp(pred, t, lhs, rhs)
}

// EvalCast converts a bit pattern from type st to type dt.
func EvalCast(op ir.Opcode, st, dt ir.Type, src uint64) uint64 {
	return evalCast(op, st, dt, src)
}

// EvalIntrinsic evaluates a built-in math routine on float arguments.
func EvalIntrinsic(kind ir.Intrinsic, args []float64) float64 {
	return evalIntrinsic(kind, args)
}
