// Package interp executes IR modules on a deterministic virtual machine
// with a segmented flat memory, hardware-like trap semantics (out-of-bounds
// access, division by zero), hang detection via an instruction budget, and
// observation hooks. It is the execution substrate for both the profiling
// phase of TRIDENT and the LLFI-style fault-injection campaigns.
// DESIGN.md §5c documents the snapshot-replay machinery and §5f the
// decoded engine that shares this package's observable contract.
package interp

import (
	"fmt"
	"sort"

	"trident/internal/ir"
)

// Segment is one live allocation in the address space.
type Segment struct {
	Base uint64
	Size uint64
	Name string // global name or "alloca"
	data []byte
}

// End returns the first address past the segment.
func (s *Segment) End() uint64 { return s.Base + s.Size }

// Memory is a segmented flat address space. Globals are allocated at
// construction; allocas come and go with stack frames. Any access that is
// not fully contained in a live segment traps, modeling a hardware
// exception on reading or writing outside the program's memory (the
// paper's dominant crash cause).
type Memory struct {
	segments []*Segment // sorted by Base
	next     uint64     // next allocation base
	peak     uint64     // peak total allocated bytes
	current  uint64     // current total allocated bytes
}

const (
	// memoryBase is the first allocated address; low addresses always trap,
	// modeling the unmapped page at 0.
	memoryBase = 0x10000
	// segmentGap is the unmapped padding between consecutive segments, so
	// that small address corruptions can land outside any segment.
	segmentGap = 0x100
)

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{next: memoryBase}
}

// Allocate reserves size bytes and returns the new segment. Size zero is
// rounded up to one byte so every allocation has a distinct address.
func (m *Memory) Allocate(name string, size uint64) *Segment {
	if size == 0 {
		size = 1
	}
	s := &Segment{Base: m.next, Size: size, Name: name, data: make([]byte, size)}
	m.next = s.End() + segmentGap
	m.segments = append(m.segments, s) // allocation order keeps Base sorted
	m.current += size
	if m.current > m.peak {
		m.peak = m.current
	}
	return s
}

// Release removes a segment (alloca going out of scope). Subsequent
// accesses to its range trap.
func (m *Memory) Release(s *Segment) {
	for i, seg := range m.segments {
		if seg == s {
			m.segments = append(m.segments[:i], m.segments[i+1:]...)
			m.current -= s.Size
			return
		}
	}
}

// find returns the segment containing [addr, addr+size), or nil.
func (m *Memory) find(addr, size uint64) *Segment {
	// Binary search for the last segment with Base <= addr.
	i := sort.Search(len(m.segments), func(i int) bool {
		return m.segments[i].Base > addr
	})
	if i == 0 {
		return nil
	}
	s := m.segments[i-1]
	if addr+size < addr { // overflow
		return nil
	}
	if addr >= s.Base && addr+size <= s.End() {
		return s
	}
	return nil
}

// Valid reports whether [addr, addr+size) lies within a live segment.
func (m *Memory) Valid(addr, size uint64) bool { return m.find(addr, size) != nil }

// Load reads a little-endian value of width t.Bytes() from addr. The
// returned bool is false when the access traps.
func (m *Memory) Load(t ir.Type, addr uint64) (uint64, bool) {
	n := uint64(t.Bytes())
	s := m.find(addr, n)
	if s == nil {
		return 0, false
	}
	off := addr - s.Base
	var bits uint64
	for i := uint64(0); i < n; i++ {
		bits |= uint64(s.data[off+i]) << (8 * i)
	}
	return bits, true
}

// Store writes a little-endian value of width t.Bytes() to addr. The
// returned bool is false when the access traps.
func (m *Memory) Store(t ir.Type, addr, bits uint64) bool {
	n := uint64(t.Bytes())
	s := m.find(addr, n)
	if s == nil {
		return false
	}
	off := addr - s.Base
	for i := uint64(0); i < n; i++ {
		s.data[off+i] = byte(bits >> (8 * i))
	}
	return true
}

// Clone returns a deep copy of the address space plus a mapping from each
// live segment to its copy, so frame-held segment pointers can be remapped
// alongside. The allocation cursor is copied too: allocations performed
// after a restore land at the same bases they would have in the original
// run, which is what keeps resumed executions bit-identical.
func (m *Memory) Clone() (*Memory, map[*Segment]*Segment) {
	nm := &Memory{
		segments: make([]*Segment, len(m.segments)),
		next:     m.next,
		peak:     m.peak,
		current:  m.current,
	}
	remap := make(map[*Segment]*Segment, len(m.segments))
	for i, s := range m.segments {
		c := &Segment{Base: s.Base, Size: s.Size, Name: s.Name, data: append([]byte(nil), s.data...)}
		nm.segments[i] = c
		remap[s] = c
	}
	return nm, remap
}

// PeakBytes returns the peak total allocated bytes, the quantity the paper
// profiles (via /proc) to derive crash probabilities for corrupted
// addresses.
func (m *Memory) PeakBytes() uint64 { return m.peak }

// CurrentBytes returns the currently allocated byte total.
func (m *Memory) CurrentBytes() uint64 { return m.current }

// NumSegments returns the number of live segments.
func (m *Memory) NumSegments() int { return len(m.segments) }

// String summarizes the memory map for diagnostics.
func (m *Memory) String() string {
	return fmt.Sprintf("memory{%d segments, %d bytes live, %d peak}",
		len(m.segments), m.current, m.peak)
}
