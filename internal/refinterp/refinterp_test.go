package refinterp

import (
	"strings"
	"testing"

	"trident/internal/ir"
)

// mustParse parses IR text or fails the test.
func mustParse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

func TestRunSimpleOutput(t *testing.T) {
	m := mustParse(t, `
module "t"
func @main() void {
entry:
  %a = add i32 2, i32 3
  print %a
  ret
}
`)
	res, err := Run(m, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outcome != OutcomeOK {
		t.Fatalf("outcome = %v, want ok", res.Outcome)
	}
	if res.Output != "5\n" {
		t.Fatalf("output = %q, want %q", res.Output, "5\n")
	}
	// add + print + ret = 3 dispatched instructions, 1 register write.
	if res.DynInstrs != 3 || res.DynResults != 1 {
		t.Fatalf("counters = (%d,%d), want (3,1)", res.DynInstrs, res.DynResults)
	}
}

func TestDivZeroTrap(t *testing.T) {
	m := mustParse(t, `
module "t"
func @main() void {
entry:
  %z = sub i32 1, i32 1
  %d = sdiv i32 7, %z
  print %d
  ret
}
`)
	res, err := Run(m, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outcome != OutcomeCrash || res.Trap == nil || res.Trap.Kind != TrapDivZero {
		t.Fatalf("got outcome %v trap %+v, want crash/div-zero", res.Outcome, res.Trap)
	}
}

func TestOOBLoadTrap(t *testing.T) {
	m := mustParse(t, `
module "t"
func @main() void {
entry:
  %p = alloca i32 x 2
  %q = gep i32, %p, i64 100
  %v = load i32, %q
  print %v
  ret
}
`)
	res, err := Run(m, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outcome != OutcomeCrash || res.Trap == nil || res.Trap.Kind != TrapOOBLoad {
		t.Fatalf("got outcome %v trap %+v, want crash/oob-load", res.Outcome, res.Trap)
	}
}

func TestInfiniteLoopHangs(t *testing.T) {
	m := mustParse(t, `
module "t"
func @main() void {
entry:
  br spin
spin:
  br spin
}
`)
	res, err := Run(m, Options{MaxDynInstrs: 1000})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outcome != OutcomeHang {
		t.Fatalf("outcome = %v, want hang", res.Outcome)
	}
	if res.DynInstrs != 1001 {
		t.Fatalf("DynInstrs = %d, want budget+1", res.DynInstrs)
	}
}

func TestStackOverflow(t *testing.T) {
	m := mustParse(t, `
module "t"
func @rec() void {
entry:
  call @rec()
  ret
}
func @main() void {
entry:
  call @rec()
  ret
}
`)
	res, err := Run(m, Options{MaxCallDepth: 16})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outcome != OutcomeCrash || res.Trap == nil || res.Trap.Kind != TrapStackOverflow {
		t.Fatalf("got outcome %v trap %+v, want crash/stack-overflow", res.Outcome, res.Trap)
	}
}

func TestCheckDetects(t *testing.T) {
	m := mustParse(t, `
module "t"
func @main() void {
entry:
  %a = add i32 1, i32 2
  %b = add i32 1, i32 3
  check %a, %b
  ret
}
`)
	res, err := Run(m, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Outcome != OutcomeDetected || res.Trap == nil || res.Trap.Kind != TrapDetected {
		t.Fatalf("got outcome %v trap %+v, want detected", res.Outcome, res.Trap)
	}
}

func TestOnResultInjection(t *testing.T) {
	m := mustParse(t, `
module "t"
func @main() void {
entry:
  %a = add i32 2, i32 3
  print %a
  ret
}
`)
	hit := 0
	res, err := Run(m, Options{
		OnResult: func(in *ir.Instr, bits uint64) uint64 {
			hit++
			return bits ^ 1 // flip the low bit of the sum
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if hit != 1 {
		t.Fatalf("OnResult fired %d times, want 1", hit)
	}
	if strings.TrimSpace(res.Output) != "4" {
		t.Fatalf("output = %q, want 4 (5 with bit 0 flipped)", res.Output)
	}
}

func TestPhiSimultaneousSwap(t *testing.T) {
	// The classic swap idiom: both phis must read the pre-entry values.
	m := mustParse(t, `
module "t"
func @main() void {
entry:
  br head
head:
  %x = phi i32 [i32 1, entry], [%y, head]
  %y = phi i32 [i32 2, entry], [%x, head]
  %n = phi i32 [i32 0, entry], [%n1, head]
  %n1 = add %n, i32 1
  %c = icmp slt %n1, i32 3
  condbr %c, head, exit
exit:
  print %x
  print %y
  ret
}
`)
	res, err := Run(m, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 3 iterations: (1,2) -> (2,1) -> (1,2).
	if res.Output != "1\n2\n" {
		t.Fatalf("output = %q, want 1,2 after an odd number of swaps", res.Output)
	}
}
