package refinterp

// memory is a naive segmented flat address space: a plain slice of live
// segments searched linearly on every access. It replicates the
// production interpreter's observable layout — first allocation at
// 0x10000, 0x100 bytes of unmapped padding between segments, zero-sized
// allocations rounded up to one byte — because addresses leak into
// program results through alloca/gep registers and printed pointers.
type memory struct {
	segs    []*segment
	next    uint64
	current uint64
	peak    uint64
}

// segment is one live allocation.
type segment struct {
	base uint64
	size uint64
	data []byte
}

// end returns the first address past the segment.
func (s *segment) end() uint64 { return s.base + s.size }

const (
	memoryBase = 0x10000
	segmentGap = 0x100
)

// newMemory returns an empty address space.
func newMemory() *memory {
	return &memory{next: memoryBase}
}

// allocate reserves size bytes (zero rounds up to one) and returns the
// new segment.
func (m *memory) allocate(size uint64) *segment {
	if size == 0 {
		size = 1
	}
	s := &segment{base: m.next, size: size, data: make([]byte, size)}
	m.next = s.end() + segmentGap
	m.segs = append(m.segs, s)
	m.current += size
	if m.current > m.peak {
		m.peak = m.current
	}
	return s
}

// release removes a segment (an alloca going out of scope).
func (m *memory) release(s *segment) {
	for i, seg := range m.segs {
		if seg == s {
			m.segs = append(m.segs[:i], m.segs[i+1:]...)
			m.current -= s.size
			return
		}
	}
}

// find returns the live segment fully containing [addr, addr+size), or
// nil — by linear scan, the obvious way.
func (m *memory) find(addr uint64, size int) *segment {
	n := uint64(size)
	if addr+n < addr { // overflow
		return nil
	}
	for _, s := range m.segs {
		if addr >= s.base && addr+n <= s.end() {
			return s
		}
	}
	return nil
}

// load reads a little-endian value of the given byte width from addr.
// The bool is false when the access traps.
func (m *memory) load(addr uint64, size int) (uint64, bool) {
	s := m.find(addr, size)
	if s == nil {
		return 0, false
	}
	off := addr - s.base
	var bits uint64
	for i := 0; i < size; i++ {
		bits |= uint64(s.data[off+uint64(i)]) << (8 * i)
	}
	return bits, true
}

// store writes a little-endian value of the given byte width to addr.
// The bool is false when the access traps.
func (m *memory) store(addr uint64, size int, bits uint64) bool {
	s := m.find(addr, size)
	if s == nil {
		return false
	}
	off := addr - s.base
	for i := 0; i < size; i++ {
		s.data[off+uint64(i)] = byte(bits >> (8 * i))
	}
	return true
}
