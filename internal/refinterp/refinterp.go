// Package refinterp is a deliberately naive reference evaluator for the
// IR: a direct recursive walk over functions and blocks with no explicit
// frames, no snapshots, no pooling and no telemetry. It is optimized for
// obviousness, not speed, and exists as an independent oracle for the
// production interpreter (internal/interp): the crosscheck harness runs
// programs through both and asserts bit-identical outputs, trap kinds,
// hang classification, dynamic instruction counts and per-instruction
// register-write traces.
//
// The two implementations share only the IR-level value helpers
// (ir.TruncateToWidth, ir.SignExtend, ir.FloatFromBits/ToBits,
// ir.FormatValue), which define the meaning of IR values for the parser
// and printer too. Everything the production interpreter is clever about
// — the explicit-frame machine, segmented memory with binary search,
// snapshot capture — is reimplemented here in the simplest possible form.
//
// Observable contract mirrored from internal/interp (asserted by
// internal/crosscheck, so a drift in either implementation surfaces as a
// reported divergence rather than silent disagreement):
//
//   - Address layout: allocations start at 0x10000 and are separated by
//     0x100 bytes of unmapped padding, in allocation order (globals in
//     module order, then allocas in execution order). Addresses are
//     observable through gep/alloca register writes and printed pointers.
//   - Counting: every dispatched instruction increments the dynamic
//     count before executing, phis included (they execute as part of
//     block entry, after the branch that enters the block). A run whose
//     count would exceed MaxDynInstrs classifies as a hang before the
//     offending instruction executes, so a program that completes or
//     traps exactly at the budget keeps its completion or trap.
//   - Traps: out-of-bounds loads and stores, integer division or
//     remainder by zero, call nesting beyond MaxCallDepth, and a failed
//     duplication check (which is a detection, not a crash).
//
// DESIGN.md §5e documents the harness this evaluator anchors.
package refinterp

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"trident/internal/ir"
)

// TrapKind classifies hardware-exception-like failures, mirroring the
// production interpreter's classification.
type TrapKind uint8

// Trap kinds.
const (
	TrapNone TrapKind = iota
	// TrapOOBLoad is a read outside every live segment.
	TrapOOBLoad
	// TrapOOBStore is a write outside every live segment.
	TrapOOBStore
	// TrapDivZero is an integer division or remainder by zero.
	TrapDivZero
	// TrapStackOverflow is call nesting beyond the configured depth.
	TrapStackOverflow
	// TrapDetected is a duplication check firing.
	TrapDetected
)

// String returns a short name for the trap kind.
func (k TrapKind) String() string {
	switch k {
	case TrapOOBLoad:
		return "out-of-bounds load"
	case TrapOOBStore:
		return "out-of-bounds store"
	case TrapDivZero:
		return "division by zero"
	case TrapStackOverflow:
		return "stack overflow"
	case TrapDetected:
		return "error detected by check"
	default:
		return "none"
	}
}

// Trap describes a crash: the failing instruction and the offending
// address when applicable.
type Trap struct {
	Kind  TrapKind
	Instr *ir.Instr
	Addr  uint64
}

// Error implements error.
func (t *Trap) Error() string {
	if t.Kind == TrapOOBLoad || t.Kind == TrapOOBStore {
		return fmt.Sprintf("%s at %#x (%s)", t.Kind, t.Addr, t.Instr.Pos())
	}
	return fmt.Sprintf("%s (%s)", t.Kind, t.Instr.Pos())
}

// Outcome classifies a completed execution.
type Outcome uint8

// Execution outcomes.
const (
	// OutcomeOK means the program ran to completion.
	OutcomeOK Outcome = iota
	// OutcomeCrash means a trap terminated the program.
	OutcomeCrash
	// OutcomeHang means the instruction budget was exhausted.
	OutcomeHang
	// OutcomeDetected means a duplication check caught a corrupted value.
	OutcomeDetected
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeCrash:
		return "crash"
	case OutcomeHang:
		return "hang"
	case OutcomeDetected:
		return "detected"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Options configure an execution.
type Options struct {
	// MaxDynInstrs bounds the number of executed instructions; exceeding
	// it classifies the run as a hang. Zero means the default (50M).
	MaxDynInstrs uint64
	// MaxCallDepth bounds call nesting. Zero means the default (1024).
	MaxCallDepth int
	// OnResult fires after an instruction computes its result (already
	// truncated to the result type's width) and may return altered bits —
	// the fault-injection and trace-capture point. Returned bits are
	// truncated again.
	OnResult func(in *ir.Instr, bits uint64) uint64
}

const (
	defaultMaxDynInstrs = 50_000_000
	defaultMaxCallDepth = 1024
)

// Result describes a completed execution.
type Result struct {
	// Outcome classifies the run.
	Outcome Outcome
	// Trap holds crash details when Outcome is OutcomeCrash or
	// OutcomeDetected.
	Trap *Trap
	// Output is the program's observable output (one line per Print).
	Output string
	// OutputLines is the number of Print executions.
	OutputLines int
	// DynInstrs is the number of executed instructions.
	DynInstrs uint64
	// DynResults is the number of executed register-writing instructions.
	DynResults uint64
	// PeakMemBytes is the peak allocated footprint.
	PeakMemBytes uint64
}

// errHang signals instruction-budget exhaustion internally.
var errHang = errors.New("refinterp: instruction budget exhausted")

// evaluator is the whole interpreter state: a flat memory, global
// addresses, counters and the output buffer. Function activations live on
// the Go call stack.
type evaluator struct {
	opts    Options
	mem     *memory
	globals map[*ir.Global]uint64

	dynCount   uint64
	dynResults uint64
	depth      int
	output     strings.Builder
	lines      int
}

// Run executes m's main function under the given options.
func Run(m *ir.Module, opts Options) (*Result, error) {
	main := m.Func("main")
	if main == nil {
		return nil, fmt.Errorf("refinterp: module %q has no main", m.Name)
	}
	if len(main.Params) != 0 {
		return nil, fmt.Errorf("refinterp: main must take no parameters")
	}
	if opts.MaxDynInstrs == 0 {
		opts.MaxDynInstrs = defaultMaxDynInstrs
	}
	if opts.MaxCallDepth == 0 {
		opts.MaxCallDepth = defaultMaxCallDepth
	}

	ev := &evaluator{opts: opts, mem: newMemory(), globals: make(map[*ir.Global]uint64, len(m.Globals))}
	for _, g := range m.Globals {
		seg := ev.mem.allocate(uint64(g.SizeBytes()))
		ev.globals[g] = seg.base
		for i, bits := range g.Init {
			if !ev.mem.store(seg.base+uint64(i*g.Elem.Bytes()), g.Elem.Bytes(), bits) {
				return nil, fmt.Errorf("refinterp: initializing @%s failed", g.Name)
			}
		}
	}

	_, err := ev.call(main, nil)
	res := &Result{
		Output:       ev.output.String(),
		OutputLines:  ev.lines,
		DynInstrs:    ev.dynCount,
		DynResults:   ev.dynResults,
		PeakMemBytes: ev.mem.peak,
	}
	switch {
	case err == nil:
		res.Outcome = OutcomeOK
	case errors.Is(err, errHang):
		res.Outcome = OutcomeHang
	default:
		var trap *Trap
		if !errors.As(err, &trap) {
			return nil, err
		}
		if trap.Kind == TrapDetected {
			res.Outcome = OutcomeDetected
		} else {
			res.Outcome = OutcomeCrash
		}
		res.Trap = trap
	}
	return res, nil
}

// frame is the per-activation state of one call: the register file and
// the allocas to release when the call unwinds.
type frame struct {
	fn      *ir.Func
	regs    []uint64
	params  []uint64
	allocas []*segment
}

// call runs one function activation to completion and returns its return
// value. Execution recurses through the Go call stack; allocas are
// released when the activation unwinds, error or not.
func (ev *evaluator) call(fn *ir.Func, args []uint64) (uint64, error) {
	if ev.depth >= ev.opts.MaxCallDepth {
		return 0, &Trap{Kind: TrapStackOverflow, Instr: fn.Entry().Instrs[0]}
	}
	ev.depth++
	fr := &frame{fn: fn, regs: make([]uint64, fn.NumInstrs()), params: args}
	defer func() {
		for _, seg := range fr.allocas {
			ev.mem.release(seg)
		}
		ev.depth--
	}()

	block := fn.Entry()
	var prev *ir.Block
	for {
		next, ret, done, err := ev.runBlock(fr, block, prev)
		if err != nil {
			return 0, err
		}
		if done {
			return ret, nil
		}
		prev, block = block, next
	}
}

// runBlock executes one basic block: the phi cluster first (simultaneous
// reads, sequential writes), then every remaining instruction up to the
// terminator. It returns the successor block, or done=true with the
// return value when the block returns from the function.
func (ev *evaluator) runBlock(fr *frame, block, prev *ir.Block) (next *ir.Block, ret uint64, done bool, err error) {
	// Phis evaluate simultaneously on block entry: all incoming values are
	// read against the pre-entry register state before any phi writes.
	nPhi := 0
	for _, in := range block.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		nPhi++
	}
	if nPhi > 0 {
		vals := make([]uint64, nPhi)
		for i := 0; i < nPhi; i++ {
			in := block.Instrs[i]
			v, ok := ev.phiIncoming(fr, in, prev)
			if !ok {
				prevName := "<entry>"
				if prev != nil {
					prevName = prev.Name
				}
				return nil, 0, false, fmt.Errorf("refinterp: phi %s has no incoming for block %s",
					in.Pos(), prevName)
			}
			vals[i] = v
		}
		for i := 0; i < nPhi; i++ {
			if err := ev.tick(); err != nil {
				return nil, 0, false, err
			}
			ev.writeResult(fr, block.Instrs[i], vals[i])
		}
	}

	for idx := nPhi; idx < len(block.Instrs); idx++ {
		in := block.Instrs[idx]
		if err := ev.tick(); err != nil {
			return nil, 0, false, err
		}
		switch in.Op {
		case ir.OpBr:
			return in.Targets[0], 0, false, nil
		case ir.OpCondBr:
			if ev.eval(fr, in.Operands[0])&1 != 0 {
				return in.Targets[0], 0, false, nil
			}
			return in.Targets[1], 0, false, nil
		case ir.OpRet:
			if len(in.Operands) == 1 {
				return nil, ev.eval(fr, in.Operands[0]), true, nil
			}
			return nil, 0, true, nil
		case ir.OpCall:
			args := make([]uint64, len(in.Operands))
			for i, a := range in.Operands {
				args[i] = ev.eval(fr, a)
			}
			r, err := ev.call(in.Callee, args)
			if err != nil {
				return nil, 0, false, err
			}
			ev.writeResult(fr, in, r)
		case ir.OpStore:
			bits := ev.eval(fr, in.Operands[0])
			addr := ev.eval(fr, in.Operands[1])
			if !ev.mem.store(addr, in.Elem.Bytes(), bits) {
				return nil, 0, false, &Trap{Kind: TrapOOBStore, Instr: in, Addr: addr}
			}
		case ir.OpCheck:
			if ev.eval(fr, in.Operands[0]) != ev.eval(fr, in.Operands[1]) {
				return nil, 0, false, &Trap{Kind: TrapDetected, Instr: in}
			}
		case ir.OpPrint:
			bits := ev.eval(fr, in.Operands[0])
			ev.output.WriteString(ir.FormatValue(in.Operands[0].ValueType(), bits, in.Format))
			ev.output.WriteByte('\n')
			ev.lines++
		default:
			bits, err := ev.compute(fr, in)
			if err != nil {
				return nil, 0, false, err
			}
			ev.writeResult(fr, in, bits)
		}
	}
	return nil, 0, false, fmt.Errorf("refinterp: fell off end of block in %s", fr.fn.Name)
}

// phiIncoming returns the incoming value of a phi for the given
// predecessor block.
func (ev *evaluator) phiIncoming(fr *frame, in *ir.Instr, prev *ir.Block) (uint64, bool) {
	for j, pb := range in.PhiBlocks {
		if pb == prev {
			return ev.eval(fr, in.Operands[j]), true
		}
	}
	return 0, false
}

// tick counts one dispatched instruction against the budget. The count
// is incremented before the instruction executes, and exceeding the
// budget hangs before execution — so completing or trapping exactly at
// the budget keeps its classification.
func (ev *evaluator) tick() error {
	ev.dynCount++
	if ev.dynCount > ev.opts.MaxDynInstrs {
		return errHang
	}
	return nil
}

// writeResult truncates the result, offers it to the hook, counts it and
// writes the register. Instructions without a result are ignored.
func (ev *evaluator) writeResult(fr *frame, in *ir.Instr, bits uint64) {
	if !in.HasResult() {
		return
	}
	bits = ir.TruncateToWidth(bits, in.Type.Bits())
	ev.dynResults++
	if h := ev.opts.OnResult; h != nil {
		bits = ir.TruncateToWidth(h(in, bits), in.Type.Bits())
	}
	fr.regs[in.ID] = bits
}

// eval resolves an operand to its bit pattern in the current frame.
func (ev *evaluator) eval(fr *frame, v ir.Value) uint64 {
	switch x := v.(type) {
	case *ir.Const:
		return x.Bits
	case *ir.Instr:
		return fr.regs[x.ID]
	case *ir.Param:
		return fr.params[x.Index]
	case *ir.Global:
		return ev.globals[x]
	default:
		panic(fmt.Sprintf("refinterp: unknown value kind %T", v))
	}
}

// compute evaluates a non-control, non-memory-write instruction.
func (ev *evaluator) compute(fr *frame, in *ir.Instr) (uint64, error) {
	switch {
	case in.Op == ir.OpAlloca:
		seg := ev.mem.allocate(uint64(in.Count * in.Elem.Bytes()))
		fr.allocas = append(fr.allocas, seg)
		return seg.base, nil
	case in.Op == ir.OpLoad:
		addr := ev.eval(fr, in.Operands[0])
		bits, ok := ev.mem.load(addr, in.Elem.Bytes())
		if !ok {
			return 0, &Trap{Kind: TrapOOBLoad, Instr: in, Addr: addr}
		}
		return bits, nil
	case in.Op == ir.OpGep:
		base := ev.eval(fr, in.Operands[0])
		idxOp := in.Operands[1]
		idx := ir.SignExtend(ev.eval(fr, idxOp), idxOp.ValueType().Bits())
		return base + uint64(idx*int64(in.Elem.Bytes())), nil
	case in.Op == ir.OpSelect:
		if ev.eval(fr, in.Operands[0])&1 != 0 {
			return ev.eval(fr, in.Operands[1]), nil
		}
		return ev.eval(fr, in.Operands[2]), nil
	case in.Op == ir.OpIntrinsic:
		args := make([]float64, len(in.Operands))
		for i, a := range in.Operands {
			args[i] = ir.FloatFromBits(a.ValueType(), ev.eval(fr, a))
		}
		return ir.FloatToBits(in.Type, intrinsic(in.Intr, args)), nil
	case in.Op.IsBinary():
		return ev.binary(in, ev.eval(fr, in.Operands[0]), ev.eval(fr, in.Operands[1]))
	case in.Op.IsCmp():
		if compare(in.Pred, in.Operands[0].ValueType(), ev.eval(fr, in.Operands[0]), ev.eval(fr, in.Operands[1])) {
			return 1, nil
		}
		return 0, nil
	case in.Op.IsCast():
		return cast(in.Op, in.Operands[0].ValueType(), in.Type, ev.eval(fr, in.Operands[0])), nil
	default:
		return 0, fmt.Errorf("refinterp: cannot execute %s at %s", in.Op, in.Pos())
	}
}

// binary computes a two-operand arithmetic, bitwise or floating-point
// operation on bit patterns of the operand type.
func (ev *evaluator) binary(in *ir.Instr, lhs, rhs uint64) (uint64, error) {
	t := in.Operands[0].ValueType()
	w := t.Bits()
	switch in.Op {
	case ir.OpAdd:
		return lhs + rhs, nil
	case ir.OpSub:
		return lhs - rhs, nil
	case ir.OpMul:
		return lhs * rhs, nil
	case ir.OpSDiv, ir.OpSRem:
		n, d := ir.SignExtend(lhs, w), ir.SignExtend(rhs, w)
		if d == 0 {
			return 0, &Trap{Kind: TrapDivZero, Instr: in}
		}
		if n == math.MinInt64 && d == -1 {
			// MinInt64 / -1 overflows; the IR defines it to wrap (sdiv
			// yields MinInt64, srem yields 0) instead of trapping.
			if in.Op == ir.OpSDiv {
				return uint64(n), nil
			}
			return 0, nil
		}
		if in.Op == ir.OpSDiv {
			return uint64(n / d), nil
		}
		return uint64(n % d), nil
	case ir.OpUDiv, ir.OpURem:
		if rhs == 0 {
			return 0, &Trap{Kind: TrapDivZero, Instr: in}
		}
		if in.Op == ir.OpUDiv {
			return lhs / rhs, nil
		}
		return lhs % rhs, nil
	case ir.OpAnd:
		return lhs & rhs, nil
	case ir.OpOr:
		return lhs | rhs, nil
	case ir.OpXor:
		return lhs ^ rhs, nil
	case ir.OpShl:
		// Shift amounts reduce modulo the width, so corrupted shift
		// operands still produce a defined result.
		return lhs << (uint(rhs) % uint(w)), nil
	case ir.OpLShr:
		return ir.TruncateToWidth(lhs, w) >> (uint(rhs) % uint(w)), nil
	case ir.OpAShr:
		return uint64(ir.SignExtend(lhs, w) >> (uint(rhs) % uint(w))), nil
	case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv:
		a, b := ir.FloatFromBits(t, lhs), ir.FloatFromBits(t, rhs)
		var r float64
		switch in.Op {
		case ir.OpFAdd:
			r = a + b
		case ir.OpFSub:
			r = a - b
		case ir.OpFMul:
			r = a * b
		default:
			r = a / b // IEEE: ±Inf/NaN, no trap
		}
		return ir.FloatToBits(t, r), nil
	default:
		return 0, nil
	}
}

// compare evaluates a comparison predicate on bit patterns of type t.
func compare(pred ir.Predicate, t ir.Type, lhs, rhs uint64) bool {
	switch pred {
	case ir.PredEQ:
		return ir.TruncateToWidth(lhs, t.Bits()) == ir.TruncateToWidth(rhs, t.Bits())
	case ir.PredNE:
		return ir.TruncateToWidth(lhs, t.Bits()) != ir.TruncateToWidth(rhs, t.Bits())
	}
	if pred >= ir.PredSLT && pred <= ir.PredSGE {
		a, b := ir.SignExtend(lhs, t.Bits()), ir.SignExtend(rhs, t.Bits())
		switch pred {
		case ir.PredSLT:
			return a < b
		case ir.PredSLE:
			return a <= b
		case ir.PredSGT:
			return a > b
		default:
			return a >= b
		}
	}
	if pred >= ir.PredULT && pred <= ir.PredUGE {
		a, b := ir.TruncateToWidth(lhs, t.Bits()), ir.TruncateToWidth(rhs, t.Bits())
		switch pred {
		case ir.PredULT:
			return a < b
		case ir.PredULE:
			return a <= b
		case ir.PredUGT:
			return a > b
		default:
			return a >= b
		}
	}
	a, b := ir.FloatFromBits(t, lhs), ir.FloatFromBits(t, rhs)
	switch pred {
	case ir.PredOEQ:
		return a == b
	case ir.PredONE:
		return a != b && !math.IsNaN(a) && !math.IsNaN(b)
	case ir.PredOLT:
		return a < b
	case ir.PredOLE:
		return a <= b
	case ir.PredOGT:
		return a > b
	case ir.PredOGE:
		return a >= b
	default:
		return false
	}
}

// cast converts a bit pattern from type st to type dt.
func cast(op ir.Opcode, st, dt ir.Type, src uint64) uint64 {
	switch op {
	case ir.OpTrunc:
		return ir.TruncateToWidth(src, dt.Bits())
	case ir.OpZExt:
		return ir.TruncateToWidth(src, st.Bits())
	case ir.OpSExt:
		return uint64(ir.SignExtend(src, st.Bits()))
	case ir.OpFPTrunc:
		return ir.FloatToBits(ir.F32, ir.FloatFromBits(ir.F64, src))
	case ir.OpFPExt:
		return ir.FloatToBits(ir.F64, ir.FloatFromBits(ir.F32, src))
	case ir.OpFPToSI:
		f := ir.FloatFromBits(st, src)
		switch {
		case math.IsNaN(f):
			return 0
		case f >= math.MaxInt64:
			// Saturate at the representable bounds instead of the
			// Go-defined implementation behavior.
			var max int64 = math.MaxInt64
			return uint64(max)
		case f <= math.MinInt64:
			var min int64 = math.MinInt64
			return uint64(min)
		default:
			return uint64(int64(f))
		}
	case ir.OpSIToFP:
		return ir.FloatToBits(dt, float64(ir.SignExtend(src, st.Bits())))
	default: // Bitcast
		return src
	}
}

// intrinsic evaluates a built-in math routine.
func intrinsic(kind ir.Intrinsic, args []float64) float64 {
	switch kind {
	case ir.IntrinsicSqrt:
		return math.Sqrt(args[0])
	case ir.IntrinsicExp:
		return math.Exp(args[0])
	case ir.IntrinsicLog:
		return math.Log(args[0])
	case ir.IntrinsicSin:
		return math.Sin(args[0])
	case ir.IntrinsicCos:
		return math.Cos(args[0])
	case ir.IntrinsicPow:
		return math.Pow(args[0], args[1])
	case ir.IntrinsicFabs:
		return math.Abs(args[0])
	case ir.IntrinsicFloor:
		return math.Floor(args[0])
	case ir.IntrinsicFmin:
		return math.Min(args[0], args[1])
	case ir.IntrinsicFmax:
		return math.Max(args[0], args[1])
	default:
		return math.NaN()
	}
}
