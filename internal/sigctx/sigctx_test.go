package sigctx

import (
	"context"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		sig  os.Signal
		want int
	}{
		{nil, 0},
		{syscall.SIGINT, 130},
		{syscall.SIGTERM, 143},
		{syscall.SIGHUP, 129},
	}
	for _, c := range cases {
		if got := ExitCode(c.sig); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.sig, got, c.want)
		}
	}
}

// TestWithSignalsCancelsAndReports delivers a real SIGTERM to the test
// process and checks the context cancels and the signal is reported.
func TestWithSignalsCancelsAndReports(t *testing.T) {
	ctx, stop, fired := WithSignals(context.Background(), syscall.SIGTERM)
	defer stop()
	if got := fired(); got != nil {
		t.Fatalf("fired() = %v before any signal", got)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled after SIGTERM")
	}
	if got := fired(); got != syscall.SIGTERM {
		t.Fatalf("fired() = %v, want SIGTERM", got)
	}
	if code := ExitCode(fired()); code != 143 {
		t.Fatalf("exit code %d, want 143", code)
	}
}

// TestWithSignalsStopIdempotent: stop releases the registration and is
// safe to call repeatedly; the context ends up cancelled either way.
func TestWithSignalsStopIdempotent(t *testing.T) {
	ctx, stop, fired := WithSignals(context.Background())
	stop()
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("stop did not cancel the context")
	}
	if got := fired(); got != nil {
		t.Fatalf("fired() = %v after stop without signal", got)
	}
}
