// Package sigctx ties termination signals to context cancellation and
// to the shell's 128+signum exit-code convention, so every binary in
// the repository reports "cancelled with partial results" (130 for
// SIGINT, 143 for SIGTERM) distinguishably from "errored" (1).
//
// The standard library's signal.NotifyContext cancels a context on a
// signal but discards which signal fired; the cmd binaries need it to
// pick their exit code, and the campaign server needs it to log what
// triggered a drain. WithSignals keeps both. DESIGN.md §5g documents
// the drain this package underpins.
package sigctx

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// WithSignals returns a context that is cancelled when any of the given
// signals arrives (SIGINT and SIGTERM when none are listed), along with
// a stop function releasing the signal registration and a fired
// function reporting which signal cancelled the context — nil if none
// has. A second signal after the first is left to the default handler,
// so a stuck process can still be killed by pressing Ctrl-C twice.
func WithSignals(parent context.Context, sigs ...os.Signal) (ctx context.Context, stop func(), fired func() os.Signal) {
	if len(sigs) == 0 {
		sigs = []os.Signal{os.Interrupt, syscall.SIGTERM}
	}
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)

	var mu sync.Mutex
	var got os.Signal
	done := make(chan struct{})
	var once sync.Once
	go func() {
		select {
		case s := <-ch:
			mu.Lock()
			got = s
			mu.Unlock()
			// Restore default handling so the next signal terminates the
			// process even if graceful teardown wedges.
			signal.Stop(ch)
			cancel()
		case <-done:
		}
	}()
	stop = func() {
		once.Do(func() {
			signal.Stop(ch)
			close(done)
			cancel()
		})
	}
	fired = func() os.Signal {
		mu.Lock()
		defer mu.Unlock()
		return got
	}
	return ctx, stop, fired
}

// ExitCode maps the signal that cancelled a run to the shell convention
// 128+signum: 130 for SIGINT (Ctrl-C), 143 for SIGTERM. A nil signal —
// the run was not cancelled by a signal — maps to 0 so callers can use
// the result unconditionally; unknown signal types map to 1.
func ExitCode(sig os.Signal) int {
	if sig == nil {
		return 0
	}
	s, ok := sig.(syscall.Signal)
	if !ok {
		return 1
	}
	return 128 + int(s)
}
