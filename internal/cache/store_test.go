package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"trident/internal/telemetry"
)

// captureWarnings redirects warnf for one test.
func captureWarnings(t *testing.T) *[]string {
	t.Helper()
	var got []string
	old := warnf
	warnf = func(format string, args ...any) { got = append(got, fmt.Sprintf(format, args...)) }
	t.Cleanup(func() { warnf = old })
	return &got
}

func counter(reg *telemetry.Registry, name string) uint64 {
	return reg.Counter(name).Load()
}

func TestStoreRoundTrip(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Open(t.TempDir(), Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	key := FuncKey{Kind: FuncProfileKind, Func: "main", BodyHash: "abc", Seed: 42, N: 10}
	in := FuncProfile{
		Counts: map[string]int{"benign": 7, "sdc": 3},
		Trials: []TrialRec{{Instr: 4, Instance: 9, Bit: 17, Outcome: "sdc", Latency: 12}},
	}

	var out FuncProfile
	if s.Get(key, &out) {
		t.Fatal("Get before Put reported a hit")
	}
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	if !s.Get(key, &out) {
		t.Fatal("Get after Put missed")
	}
	if out.Counts["benign"] != 7 || out.Counts["sdc"] != 3 || len(out.Trials) != 1 || out.Trials[0] != in.Trials[0] {
		t.Errorf("round-tripped profile differs: %+v", out)
	}
	if h, m := counter(reg, "cache.hits"), counter(reg, "cache.misses"); h != 1 || m != 1 {
		t.Errorf("hits=%d misses=%d, want 1 and 1", h, m)
	}

	// A different key — even one differing only in the stamp — misses.
	other := key
	other.Stamp.GoldenDyn = 1
	if s.Get(other, &out) {
		t.Error("stamp-differing key hit")
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := FuncKey{Kind: FuncProfileKind, Func: "f", BodyHash: "h", N: 1}
	if err := s1.Put(key, FuncProfile{Counts: map[string]int{"benign": 1}}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out FuncProfile
	if !s2.Get(key, &out) {
		t.Fatal("entry not visible after reopening the store")
	}
}

// entryFiles returns every entry file under the store.
func entryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && strings.HasSuffix(path, ".json") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestStoreTornEntryIsMiss simulates the SIGKILL-mid-write case: an
// entry truncated at every possible byte offset must read as a miss,
// never as corrupt data, and must bump the cache.torn counter.
func TestStoreTornEntryIsMiss(t *testing.T) {
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	s, err := Open(dir, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	warnings := captureWarnings(t)
	key := FuncKey{Kind: FuncProfileKind, Func: "main", BodyHash: "abc", N: 5}
	if err := s.Put(key, FuncProfile{Counts: map[string]int{"sdc": 5}}); err != nil {
		t.Fatal(err)
	}
	files := entryFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("got %d entry files, want 1", len(files))
	}
	full, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(files[0], full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var out FuncProfile
		if s.Get(key, &out) {
			t.Fatalf("torn entry (truncated to %d/%d bytes) read as a hit", cut, len(full))
		}
	}
	if counter(reg, "cache.torn") == 0 {
		t.Error("cache.torn counter never incremented")
	}
	if len(*warnings) == 0 {
		t.Error("no warning emitted for torn entries")
	}

	// Re-putting heals the entry.
	if err := s.Put(key, FuncProfile{Counts: map[string]int{"sdc": 5}}); err != nil {
		t.Fatal(err)
	}
	var out FuncProfile
	if !s.Get(key, &out) || out.Counts["sdc"] != 5 {
		t.Error("re-put after torn entry did not restore the profile")
	}
}

// TestStoreDetectsBitFlip flips each byte of a valid entry and checks
// the checksum catches the tampering (apt, given the repository).
func TestStoreDetectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	captureWarnings(t)
	key := FuncKey{Kind: FuncProfileKind, Func: "main", BodyHash: "abc", N: 5}
	if err := s.Put(key, FuncProfile{Counts: map[string]int{"sdc": 5, "benign": 0}}); err != nil {
		t.Fatal(err)
	}
	file := entryFiles(t, dir)[0]
	full, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		corrupt := append([]byte(nil), full...)
		corrupt[i] ^= 0x10
		if err := os.WriteFile(file, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		var out FuncProfile
		if s.Get(key, &out) {
			// A flip may land in JSON whitespace-free structure and still
			// parse; the checksum must then reject it. A hit is only
			// acceptable if the decoded payload is identical.
			if out.Counts["sdc"] != 5 {
				t.Fatalf("byte %d flipped: corrupt entry read as hit with wrong payload", i)
			}
		}
	}
}

func TestStorePutOverwrites(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := FuncKey{Kind: FuncProfileKind, Func: "main", BodyHash: "abc", N: 2}
	if err := s.Put(key, FuncProfile{Counts: map[string]int{"benign": 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, FuncProfile{Counts: map[string]int{"sdc": 2}}); err != nil {
		t.Fatal(err)
	}
	var out FuncProfile
	if !s.Get(key, &out) || out.Counts["sdc"] != 2 || out.Counts["benign"] != 0 {
		t.Errorf("overwrite not visible: %+v", out)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open("", Options{}); err == nil {
		t.Error("Open(\"\") succeeded")
	}
}
