package cache

// This file defines the schema of per-function campaign profiles — the
// payloads the compositional campaign (internal/fault) stores and the
// composition layer consumes. The types speak strings, not fault.Outcome
// values, so the cache has no dependency on the fault package and an
// on-disk profile is readable without it.

// Stamp pins a profile to the behavior of the golden run it was measured
// under. Body hashes alone are not enough for soundness: a fault injected
// in one function propagates through the whole program, so a cached
// profile is only reusable while the rest of the program still behaves
// identically. The stamp captures that behavior — the golden output
// hash, the golden dynamic instruction count, and this function's own
// activation count — and lives *inside* the cache key: a
// behavior-changing edit anywhere changes the stamp and every lookup
// misses (full re-run, correct), while a behavior-preserving edit (a
// register rename, a comment-level change) leaves other functions'
// stamps intact and their profiles hit.
type Stamp struct {
	// GoldenOutput is the hex hash of the fault-free program output.
	GoldenOutput string `json:"golden_output"`
	// GoldenDyn is the fault-free dynamic instruction count.
	GoldenDyn uint64 `json:"golden_dyn"`
	// Activations is this function's share of the activation space: its
	// dynamic register-write count in the golden run.
	Activations uint64 `json:"activations"`
}

// FuncKey is the content address of one per-function campaign section.
// Two campaigns that agree on every field draw the identical trial list
// and classify it identically, so the cached profile substitutes for
// re-execution bit for bit. The execution engine is deliberately absent:
// engine parity (legacy and decoded engines produce bit-identical
// campaigns, fenced by the cross-engine differential suites) makes the
// profile engine-independent, and sharing one cache across engines is a
// feature the differential suite exercises.
type FuncKey struct {
	// Kind distinguishes payload schemas sharing one store directory
	// ("func-profile" for these).
	Kind string `json:"kind"`
	// Func is the function name; BodyHash is hashutil.Hex of the hash of
	// its canonical printed form.
	Func     string `json:"func"`
	BodyHash string `json:"body_hash"`
	// Model names the fault model and its version ("bitflip/v1").
	Model string `json:"model"`
	// HangFactor is the hang-detection budget multiplier in effect.
	HangFactor uint64 `json:"hang_factor"`
	// Seed is the campaign seed; the per-function sampling stream is
	// derived from it together with Func and BodyHash.
	Seed uint64 `json:"seed"`
	// N is the number of trials apportioned to this function.
	N int `json:"n"`
	// Prune is the hex hash of the static bit-liveness masks in effect
	// for this function (internal/bitlive, DESIGN.md §5i), empty when
	// pruning is off. Pruned and unpruned campaigns classify every trial
	// identically when the analysis is sound, but the analysis itself
	// can change across versions — keying on the mask hash means a
	// rule change invalidates exactly the entries whose masks moved,
	// and unpruned keys stay byte-identical to pre-pruning releases.
	Prune string `json:"prune,omitempty"`
	// Stratify is the hex hash of the stratification in effect for this
	// function — its bit-influence classification folded with the plan's
	// rates (internal/bitlive, ANALYSIS.md "Stratified sampling over live
	// bits") — empty for plain campaigns. A stratified section holds a
	// thinned, reweighted subset of the plain section's trials, so the
	// two must never share an entry; keying on the hash also means a
	// classifier or plan change invalidates exactly the stratified
	// entries, while plain keys stay byte-identical to prior releases.
	Stratify string `json:"stratify,omitempty"`
	// Stamp pins the golden-run behavior this profile was measured under.
	Stamp Stamp `json:"stamp"`
}

// FuncProfileKind is the FuncKey.Kind value for per-function profiles.
const FuncProfileKind = "func-profile"

// TrialRec is one completed trial in a per-function profile: the full
// transcript, not just a tally, so a composed campaign can reproduce a
// from-scratch campaign's per-trial records bit for bit. Instr is the
// function-local instruction ID (stable across print→parse round trips),
// never a pointer or a global index.
type TrialRec struct {
	Instr    int    `json:"instr"`
	Instance uint64 `json:"instance"`
	Bit      int    `json:"bit"`
	Outcome  string `json:"outcome"`
	Latency  uint64 `json:"latency,omitempty"`
}

// FuncProfile is the cached payload for one FuncKey: the exact outcome
// tally plus the per-trial transcript in sampling order. Profiles are
// only ever written for clean sections — no Errored trials, no
// cancellation — so replaying one is indistinguishable from re-running.
type FuncProfile struct {
	Counts map[string]int `json:"counts"`
	Trials []TrialRec     `json:"trials"`
}
