// Package cache is the content-addressed campaign-profile store behind
// incremental fault-injection campaigns (FastFlip-style, PAPERS.md): a
// per-function outcome profile is cached under a key that includes the
// function's canonical body hash and the campaign's fault-model
// configuration, and whole-program estimates are recomposed from cached
// profiles weighted by dynamic counts. Because every ingredient of the
// key is a content address, staleness does not exist as a state — a
// stale entry is simply an entry whose key is never asked for again.
//
// The store itself is generic: any JSON-serializable (key, payload) pair
// can be stored, and the server's whole-job result cache reuses it. Disk
// corruption is never trusted and never fatal: each entry carries a
// checksum over its key and payload bytes, and a torn or tampered entry
// (the SIGKILL-mid-write case) is detected, reported through the
// cache.torn counter, and treated as a miss, mirroring the checkpoint
// log's torn-tail tolerance. DESIGN.md §5h covers the compositional
// campaign built on this store; §5i covers the pruning field of its
// keys.
package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"trident/internal/hashutil"
	"trident/internal/telemetry"
)

// warnf reports non-fatal cache anomalies (torn entries, unreadable
// files). Tests swap it to capture output.
var warnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// storeVersion is bumped whenever the envelope layout changes; entries
// with a different version are misses.
const storeVersion = 1

// envelope is the on-disk form of one entry. Key and Payload are kept as
// raw JSON so the checksum is defined over the exact bytes written, and
// so Get can verify the stored key is byte-identical to the requested
// one (a 64-bit filename collision must read as a miss, not as the wrong
// entry).
type envelope struct {
	Version  int             `json:"version"`
	Key      json.RawMessage `json:"key"`
	Payload  json.RawMessage `json:"payload"`
	Checksum string          `json:"checksum"`
}

// checksum is the FNV-1a hash of the key bytes, a newline separator (no
// top-level JSON value contains one), and the payload bytes.
func checksum(key, payload []byte) string {
	buf := make([]byte, 0, len(key)+1+len(payload))
	buf = append(buf, key...)
	buf = append(buf, '\n')
	buf = append(buf, payload...)
	return hashutil.Hex(hashutil.Bytes(buf))
}

// Options configures a Store. Both fields may be zero: a nil Metrics
// registry disables counters, a nil Trace disables spans.
type Options struct {
	Metrics *telemetry.Registry
	Trace   *telemetry.Trace
}

// Store is a content-addressed key→payload store rooted at a directory.
// It is safe for concurrent use by multiple goroutines and multiple
// processes: writes are atomic (tmp+rename within the store directory)
// and readers validate checksums, so the worst outcome of a race or a
// crash is a detected miss.
type Store struct {
	dir   string
	trace *telemetry.Trace

	hits, misses, torn *telemetry.Counter
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cache: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	s := &Store{dir: dir, trace: opts.Trace}
	if reg := opts.Metrics; reg != nil {
		s.hits = reg.Counter("cache.hits")
		s.misses = reg.Counter("cache.misses")
		s.torn = reg.Counter("cache.torn")
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key's JSON bytes to the entry's file path. The first hex
// byte fans entries out across 256 subdirectories so large campaign
// histories do not pile into one directory.
func (s *Store) path(keyBytes []byte) string {
	hex := hashutil.Hex(hashutil.Bytes(keyBytes))
	return filepath.Join(s.dir, hex[:2], hex+".json")
}

func (s *Store) inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Get looks up key and, on a hit, unmarshals the stored payload into
// payload (which must be a pointer). Every failure mode — missing file,
// torn write, checksum mismatch, filename collision, schema mismatch —
// is a miss; corruption is additionally reported via warnf and the
// cache.torn counter. A miss never carries an error: the caller's
// recovery is always the same (recompute and Put).
func (s *Store) Get(key, payload any) bool {
	keyBytes, err := json.Marshal(key)
	if err != nil {
		warnf("cache: unmarshalable key %T: %v", key, err)
		s.inc(s.misses)
		return false
	}
	path := s.path(keyBytes)
	span := s.trace.Start("cache.get", telemetry.Attrs{"entry": filepath.Base(path)})
	hit := s.get(keyBytes, path, payload)
	span.EndWith(telemetry.Attrs{"hit": hit})
	if hit {
		s.inc(s.hits)
	} else {
		s.inc(s.misses)
	}
	return hit
}

func (s *Store) get(keyBytes []byte, path string, payload any) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		if !os.IsNotExist(err) {
			warnf("cache: reading %s: %v (treating as miss)", path, err)
			s.inc(s.torn)
		}
		return false
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		warnf("cache: torn entry %s: %v (treating as miss)", path, err)
		s.inc(s.torn)
		return false
	}
	if env.Version != storeVersion {
		warnf("cache: entry %s has version %d, want %d (treating as miss)",
			path, env.Version, storeVersion)
		return false
	}
	if got, want := env.Checksum, checksum(env.Key, env.Payload); got != want {
		warnf("cache: entry %s fails checksum (%s, want %s; treating as miss)",
			path, got, want)
		s.inc(s.torn)
		return false
	}
	if string(env.Key) != string(keyBytes) {
		// 64-bit filename collision between distinct keys: astronomically
		// rare, but the checksummed key makes it a detected miss.
		warnf("cache: entry %s holds a different key (filename collision; treating as miss)", path)
		return false
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		warnf("cache: entry %s payload does not decode: %v (treating as miss)", path, err)
		s.inc(s.torn)
		return false
	}
	return true
}

// Put stores payload under key, atomically replacing any existing entry.
// The write goes to a temp file in the entry's directory and is renamed
// into place, so concurrent readers see either the old entry or the new
// one, never a torn mix.
func (s *Store) Put(key, payload any) error {
	keyBytes, err := json.Marshal(key)
	if err != nil {
		return fmt.Errorf("cache: marshaling key: %w", err)
	}
	payloadBytes, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("cache: marshaling payload: %w", err)
	}
	env := envelope{
		Version:  storeVersion,
		Key:      keyBytes,
		Payload:  payloadBytes,
		Checksum: checksum(keyBytes, payloadBytes),
	}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("cache: marshaling envelope: %w", err)
	}
	path := s.path(keyBytes)
	span := s.trace.Start("cache.put", telemetry.Attrs{"entry": filepath.Base(path), "bytes": len(data)})
	defer span.End()
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: writing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: writing %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}
