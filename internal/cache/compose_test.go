package cache

import (
	"math"
	"testing"

	"trident/internal/stats"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

// TestComposeSingleFunctionMatchesMonolithic pins the base case: one
// function's tally composes to exactly its own rates and the Wilson
// interval a monolithic campaign would report.
func TestComposeSingleFunctionMatchesMonolithic(t *testing.T) {
	c := Compose([]FuncTally{{
		Func:   "main",
		Weight: 1000,
		Counts: map[string]int{"benign": 70, "sdc": 20, "crash": 10},
	}})
	if c.Trials != 100 || c.Classified != 100 {
		t.Fatalf("trials=%d classified=%d, want 100/100", c.Trials, c.Classified)
	}
	if !almostEq(c.SDC, 0.2) {
		t.Errorf("SDC = %v, want 0.2", c.SDC)
	}
	lo, hi := stats.WilsonBounds(0.2, 100)
	if !almostEq(c.SDCLo, lo) || !almostEq(c.SDCHi, hi) {
		t.Errorf("bounds (%v, %v), want (%v, %v)", c.SDCLo, c.SDCHi, lo, hi)
	}
	if !almostEq(c.ErrorBar95(), stats.ProportionCI95(0.2, 100)) {
		t.Errorf("ErrorBar95 = %v, want ProportionCI95 = %v",
			c.ErrorBar95(), stats.ProportionCI95(0.2, 100))
	}
}

// TestComposeWeights checks the activation-weighted average: a function
// with three times the weight contributes three times the rate mass,
// regardless of how many trials each section ran.
func TestComposeWeights(t *testing.T) {
	c := Compose([]FuncTally{
		{Func: "hot", Weight: 300, Counts: map[string]int{"sdc": 50, "benign": 50}},  // p=0.5
		{Func: "cold", Weight: 100, Counts: map[string]int{"sdc": 10, "benign": 90}}, // p=0.1
	})
	want := 0.75*0.5 + 0.25*0.1
	if !almostEq(c.SDC, want) {
		t.Errorf("SDC = %v, want %v", c.SDC, want)
	}
	// Program rates over classified outcomes sum to 1.
	sum := 0.0
	for o, r := range c.Rates {
		if o != ErroredName {
			sum += r
		}
	}
	if !almostEq(sum, 1) {
		t.Errorf("classified rates sum to %v, want 1 (%v)", sum, c.Rates)
	}
}

// TestComposeSkipsUnclassified: a function whose section produced no
// classified trials contributes counts but no rate mass, and the weights
// renormalize over the rest.
func TestComposeSkipsUnclassified(t *testing.T) {
	c := Compose([]FuncTally{
		{Func: "ok", Weight: 100, Counts: map[string]int{"sdc": 25, "benign": 75}},
		{Func: "broken", Weight: 900, Counts: map[string]int{ErroredName: 10}},
	})
	if !almostEq(c.SDC, 0.25) {
		t.Errorf("SDC = %v, want 0.25 (broken function must not dilute)", c.SDC)
	}
	if c.Trials != 110 || c.Classified != 100 {
		t.Errorf("trials=%d classified=%d, want 110/100", c.Trials, c.Classified)
	}
	if !almostEq(c.Rates[ErroredName], 10.0/110) {
		t.Errorf("errored rate = %v, want %v", c.Rates[ErroredName], 10.0/110)
	}
	lo, hi := stats.WilsonBounds(0.25, 100)
	if !almostEq(c.SDCLo, lo) || !almostEq(c.SDCHi, hi) {
		t.Errorf("interval uses n=%d: (%v,%v), want (%v,%v)", c.Classified, c.SDCLo, c.SDCHi, lo, hi)
	}
}

func TestComposeEmpty(t *testing.T) {
	c := Compose(nil)
	if c.Trials != 0 || c.SDC != 0 || c.SDCLo != 0 || c.SDCHi != 0 {
		t.Errorf("empty compose not zero: %+v", c)
	}
}

// TestComposeProportionalApportionmentIsExact: when trials are
// apportioned exactly proportionally to weight, the weighted SDC equals
// the pooled SDC — composition and pooling agree, which is why the
// compositional campaign's composed rate can be bit-compared against a
// merged monolithic result.
func TestComposeProportionalApportionmentIsExact(t *testing.T) {
	// 60 and 40 trials for weights 600 and 400.
	tallies := []FuncTally{
		{Func: "a", Weight: 600, Counts: map[string]int{"sdc": 15, "benign": 45}},
		{Func: "b", Weight: 400, Counts: map[string]int{"sdc": 4, "benign": 36}},
	}
	c := Compose(tallies)
	pooled := float64(15+4) / float64(100)
	if !almostEq(c.SDC, pooled) {
		t.Errorf("proportional apportionment: composed %v != pooled %v", c.SDC, pooled)
	}
}

func TestOutcomeNamesSorted(t *testing.T) {
	c := Compose([]FuncTally{{Func: "f", Weight: 1,
		Counts: map[string]int{"sdc": 1, "benign": 1, "crash": 1}}})
	names := c.OutcomeNames()
	want := []string{"benign", "crash", "sdc"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}
