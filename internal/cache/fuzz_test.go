package cache_test

import (
	"testing"

	"trident/internal/hashutil"
	"trident/internal/ir"
	"trident/internal/progs"
)

// FuzzCacheKeyCanonical feeds arbitrary IR text (seeded with the 11
// kernel sources) to the parser: anything that parses must hash
// identically after a print→parse round trip, both per function and
// for the whole module. This is the cache-key canonicality contract —
// a module and its serialized form must always address the same cache
// entries — probed over a far wider input space than the hand-written
// corpus.
func FuzzCacheKeyCanonical(f *testing.F) {
	for _, p := range progs.All() {
		f.Add(ir.Print(p.Build()))
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ir.Parse(src)
		if err != nil {
			t.Skip() // unparseable input is out of scope; the parser fuzzer owns it
		}
		m2, err := ir.Parse(ir.Print(m))
		if err != nil {
			t.Fatalf("canonical print does not reparse: %v", err)
		}
		if h, h2 := hashutil.Module(m), hashutil.Module(m2); h != h2 {
			t.Fatalf("module hash not canonical: %s → %s", hashutil.Hex(h), hashutil.Hex(h2))
		}
		if len(m.Funcs) != len(m2.Funcs) {
			t.Fatalf("round trip changed function count: %d → %d", len(m.Funcs), len(m2.Funcs))
		}
		for i, fn := range m.Funcs {
			fn2 := m2.Funcs[i]
			if fn.Name != fn2.Name {
				t.Fatalf("round trip reordered functions: @%s → @%s", fn.Name, fn2.Name)
			}
			if h, h2 := hashutil.Function(fn), hashutil.Function(fn2); h != h2 {
				t.Fatalf("@%s: function hash not canonical: %s → %s",
					fn.Name, hashutil.Hex(h), hashutil.Hex(h2))
			}
		}
	})
}
