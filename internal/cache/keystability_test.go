// Cache-key stability suite: the compositional cache's content address
// is the canonical printed function body, so its hit rate — and its
// soundness — hinge on three printer/parser properties proven here:
//
//  1. print→parse round trips leave every function hash unchanged
//     (kernels and a swath of randomly generated programs), so keys
//     survive serialization through textual IR;
//  2. a single-instruction mutation changes exactly the containing
//     function's hash, so an edit invalidates no more than it must;
//  3. renaming an uncalled function never perturbs other functions'
//     hashes — while renaming a *called* one rightly invalidates its
//     callers, whose printed call sites embed the callee name.
package cache_test

import (
	"testing"

	"trident/internal/hashutil"
	"trident/internal/ir"
	"trident/internal/irgen"
	"trident/internal/progs"
)

// funcHashes maps every function to its canonical body hash.
func funcHashes(m *ir.Module) map[string]uint64 {
	h := make(map[string]uint64, len(m.Funcs))
	for _, f := range m.Funcs {
		h[f.Name] = hashutil.Function(f)
	}
	return h
}

// assertRoundTripStable prints m, reparses it and requires every
// function hash (and the module hash) to survive unchanged.
func assertRoundTripStable(t *testing.T, label string, m *ir.Module) {
	t.Helper()
	before := funcHashes(m)
	m2, err := ir.Parse(ir.Print(m))
	if err != nil {
		t.Fatalf("%s: reparse: %v", label, err)
	}
	after := funcHashes(m2)
	if len(after) != len(before) {
		t.Fatalf("%s: round trip changed function count: %d → %d", label, len(before), len(after))
	}
	for name, h := range before {
		if after[name] != h {
			t.Errorf("%s/@%s: hash %s → %s across print→parse",
				label, name, hashutil.Hex(h), hashutil.Hex(after[name]))
		}
	}
	if hm, hm2 := hashutil.Module(m), hashutil.Module(m2); hm != hm2 {
		t.Errorf("%s: module hash %s → %s across print→parse", label, hashutil.Hex(hm), hashutil.Hex(hm2))
	}
}

func TestRoundTripHashStabilityKernels(t *testing.T) {
	for _, p := range progs.All() {
		assertRoundTripStable(t, p.Name, p.Build())
	}
}

func TestRoundTripHashStabilityGenerated(t *testing.T) {
	n := 50
	if testing.Short() {
		n = 10
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		assertRoundTripStable(t, "irgen", irgen.Generate(irgen.Config{Seed: seed}))
	}
}

// mutateOneInstr flips the low bit of the first integer-constant
// operand of a binary instruction and returns the name of the function
// that was edited ("" if the module offers no such site).
func mutateOneInstr(m *ir.Module) string {
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if !in.Op.IsBinary() {
					continue
				}
				for i, op := range in.Operands {
					if c, ok := op.(*ir.Const); ok && c.Type.IsInt() {
						in.Operands[i] = &ir.Const{Type: c.Type, Bits: c.Bits ^ 1}
						return f.Name
					}
				}
			}
		}
	}
	return ""
}

// TestSingleInstructionMutationIsLocal: one mutated instruction changes
// exactly its own function's hash — every kernel and a set of generated
// programs.
func TestSingleInstructionMutationIsLocal(t *testing.T) {
	modules := make(map[string]*ir.Module)
	for _, p := range progs.All() {
		modules[p.Name] = p.Build()
	}
	for seed := uint64(1); seed <= 10; seed++ {
		m := irgen.Generate(irgen.Config{Seed: seed})
		modules[m.Name] = m
	}
	mutated := 0
	for label, m := range modules {
		before := funcHashes(m)
		beforeModule := hashutil.Module(m)
		edited := mutateOneInstr(m)
		if edited == "" {
			continue
		}
		mutated++
		after := funcHashes(m)
		for name, h := range before {
			if name == edited {
				if after[name] == h {
					t.Errorf("%s: mutation in @%s left its hash unchanged", label, name)
				}
				continue
			}
			if after[name] != h {
				t.Errorf("%s: mutation in @%s changed @%s's hash", label, edited, name)
			}
		}
		if hashutil.Module(m) == beforeModule {
			t.Errorf("%s: mutation left module hash unchanged", label)
		}
	}
	if mutated < 5 {
		t.Fatalf("only %d modules offered a mutation site; suite is too weak", mutated)
	}
}

// renameSource has a called helper, an uncalled spare and a main that
// only calls the helper — the fixture for the rename invariants.
const renameSource = `
module "rename"

func @helper(%x i64) i64 {
entry:
  %d = mul %x, i64 3
  ret %d
}

func @spare(%x i64) i64 {
entry:
  %d = add %x, i64 1
  ret %d
}

func @main() void {
entry:
  %v = call @helper(i64 14)
  print %v
  ret
}
`

// TestUncalledFunctionRenameNeverInvalidatesOthers: renaming @spare
// (no callers) leaves every other function's hash — and therefore
// every cached profile keyed on it — intact.
func TestUncalledFunctionRenameNeverInvalidatesOthers(t *testing.T) {
	m, err := ir.Parse(renameSource)
	if err != nil {
		t.Fatal(err)
	}
	before := funcHashes(m)
	m.Func("spare").Name = "spare_v2"
	after := funcHashes(m)
	for _, name := range []string{"helper", "main"} {
		if after[name] != before[name] {
			t.Errorf("renaming uncalled @spare changed @%s's hash", name)
		}
	}
	if after["spare_v2"] == before["spare"] {
		t.Error("rename did not change the renamed function's own hash")
	}
}

// TestCalledFunctionRenameInvalidatesCallers: renaming @helper must
// change @main's hash — the printed call site embeds the callee name,
// so stale cross-function bindings cannot hit the cache.
func TestCalledFunctionRenameInvalidatesCallers(t *testing.T) {
	m, err := ir.Parse(renameSource)
	if err != nil {
		t.Fatal(err)
	}
	before := funcHashes(m)
	m.Func("helper").Name = "helper_v2"
	after := funcHashes(m)
	if after["main"] == before["main"] {
		t.Error("renaming called @helper left @main's hash unchanged")
	}
	if after["spare"] != before["spare"] {
		t.Error("renaming @helper changed unrelated @spare's hash")
	}
}
