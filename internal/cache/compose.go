package cache

import (
	"sort"

	"trident/internal/stats"
)

// This file is the composition layer: it stitches per-function outcome
// tallies into whole-program estimates. The math mirrors a monolithic
// campaign exactly when trials were apportioned proportionally to
// activation weight (as CampaignCompositional does), and stays
// statistically honest (BEC, PAPERS.md) in general: per-function rates
// are reweighted by each function's share of the activation space, and
// the confidence interval is recomputed from the merged tallies rather
// than averaged.

// ErroredName is the outcome string excluded from program-level rates
// (matching fault.CampaignResult.Rate, which normalizes program outcomes
// over classified trials only).
const ErroredName = "errored"

// SDCName is the outcome string whose composed rate carries the
// confidence interval.
const SDCName = "sdc"

// FuncTally is one function's contribution to a composed estimate.
type FuncTally struct {
	// Func is the function name (reporting only).
	Func string
	// Weight is the function's activation count — its dynamic
	// register-write total in the golden run.
	Weight uint64
	// Counts tallies trial outcomes by name.
	Counts map[string]int
}

// classified returns the tally's program-classified trial count.
func (t FuncTally) classified() int {
	n := 0
	for o, c := range t.Counts {
		if o != ErroredName {
			n += c
		}
	}
	return n
}

// Composed is a whole-program estimate stitched from per-function
// tallies.
type Composed struct {
	// Trials is the total trial count; Classified excludes errored.
	Trials     int
	Classified int
	// Counts are the pooled outcome tallies across all functions.
	Counts map[string]int
	// Rates are activation-weighted program rates by outcome name:
	// Σ_f (w_f/W)·p_f(o), renormalized over functions that have
	// classified trials. The errored rate is pooled over all trials.
	Rates map[string]float64
	// SDC is Rates[SDCName]; SDCLo/SDCHi are its 95% Wilson bounds at
	// EffN, the Kish effective sample size of the activation-share
	// weighting (stats.WeightedTally). Proportional apportionment gives
	// every classified trial the same weight, so EffN == Classified and
	// the bounds equal the unweighted Wilson interval exactly; skewed
	// apportionment honestly widens them instead of overstating n.
	SDC   float64
	SDCLo float64
	SDCHi float64
	EffN  float64
}

// ErrorBar95 is the half-width of the composed SDC interval, centered on
// the composed estimate as fault.CampaignResult.ErrorBar95 centers its
// interval on the measured rate.
func (c Composed) ErrorBar95() float64 {
	lo := c.SDC - c.SDCLo
	if hi := c.SDCHi - c.SDC; hi > lo {
		return hi
	}
	return lo
}

// Compose stitches per-function tallies into a whole-program estimate.
// Functions with zero weight or no classified trials contribute their
// pooled counts but no rate mass; the weighted average renormalizes over
// the remaining weight so rates still sum to one.
func Compose(tallies []FuncTally) Composed {
	c := Composed{Counts: make(map[string]int), Rates: make(map[string]float64)}
	var weightSum float64
	for _, t := range tallies {
		for o, n := range t.Counts {
			c.Counts[o] += n
			c.Trials += n
		}
		if t.classified() > 0 && t.Weight > 0 {
			weightSum += float64(t.Weight)
		}
	}
	c.Classified = c.Trials - c.Counts[ErroredName]

	for _, t := range tallies {
		cls := t.classified()
		if cls == 0 || t.Weight == 0 || weightSum == 0 {
			continue
		}
		share := float64(t.Weight) / weightSum
		for o, n := range t.Counts {
			if o == ErroredName {
				continue
			}
			c.Rates[o] += share * float64(n) / float64(cls)
		}
	}
	if c.Trials > 0 {
		if n := c.Counts[ErroredName]; n > 0 {
			c.Rates[ErroredName] = float64(n) / float64(c.Trials)
		}
	}
	c.SDC = c.Rates[SDCName]
	// The composed SDC is the Hájek estimate of a weighted tally where
	// each classified trial of function f carries weight share_f/cls_f
	// (the per-trial slice of the function's rate mass): Σw·x/Σw with
	// Σw = 1 reproduces the weighted average above, and Kish's n_eff is
	// the honest sample size behind it.
	var wt stats.WeightedTally
	for _, t := range tallies {
		cls := t.classified()
		if cls == 0 || t.Weight == 0 || weightSum == 0 {
			continue
		}
		share := float64(t.Weight) / weightSum
		wt.AddN(share/float64(cls), cls, t.Counts[SDCName])
	}
	if c.EffN = wt.KishNeff(); c.EffN > 0 {
		c.SDCLo, c.SDCHi = stats.WeightedWilsonBounds(c.SDC, c.EffN)
	} else {
		c.SDCLo, c.SDCHi = stats.WilsonBounds(c.SDC, c.Classified)
	}
	return c
}

// WeightedFuncTally is one adaptively-sampled (Horvitz-Thompson
// weighted) function section's contribution to a composed estimate: the
// section drew Slots slots but executed only a thinned, reweighted
// subset, so its rates are HT sums over the slot denominator rather than
// count ratios. Plain sections are the special case Slots == classified
// count with unit weights, where ComposeWeighted agrees with Compose's
// point estimates exactly.
type WeightedFuncTally struct {
	// Func is the function name (reporting only).
	Func string
	// Weight is the function's activation count.
	Weight uint64
	// Slots is the section's classified slot denominator: the drawn slot
	// budget less the weighted mass of errored trials.
	Slots float64
	// Counts tallies executed trials by outcome name (pooled reporting).
	Counts map[string]int
	// Sums is Σ HT weight per outcome name over executed classified
	// trials.
	Sums map[string]float64
	// SDC is the weighted tally over executed classified trials with SDC
	// as the hit indicator; it carries the weight sums and the
	// thinning-variance term the interval needs.
	SDC stats.WeightedTally
}

// ComposeWeighted stitches HT-weighted per-function tallies into a
// whole-program estimate — the adaptive-campaign counterpart of Compose.
// Rates are activation-share averages of per-function HT rates; the SDC
// interval uses the stratified-design variance Σ_f share_f²·Var_f (each
// function's binomial term plus its Bernoulli-thinning term,
// stats.WeightedTally.HTEffectiveN) converted to a variance-matched
// effective sample size, falling back to the Kish size of the combined
// per-trial weights when the point estimate is degenerate.
func ComposeWeighted(tallies []WeightedFuncTally) Composed {
	c := Composed{Counts: make(map[string]int), Rates: make(map[string]float64)}
	var weightSum float64
	for _, t := range tallies {
		for o, n := range t.Counts {
			c.Counts[o] += n
			c.Trials += n
		}
		if t.Slots > 0 && t.Weight > 0 {
			weightSum += float64(t.Weight)
		}
	}
	c.Classified = c.Trials - c.Counts[ErroredName]

	var variance, kishW, kishW2 float64
	for _, t := range tallies {
		if !(t.Slots > 0) || t.Weight == 0 || weightSum == 0 {
			continue
		}
		share := float64(t.Weight) / weightSum
		for o, s := range t.Sums {
			if o == ErroredName {
				continue
			}
			r := s / t.Slots
			if r < 0 {
				r = 0
			} else if r > 1 {
				r = 1
			}
			c.Rates[o] += share * r
		}
		p := t.SDC.HTProportion(t.Slots)
		variance += share * share * (p*(1-p)/t.Slots + t.SDC.HitVar/(t.Slots*t.Slots))
		// Combined per-trial weights for the degenerate fallback: each
		// classified trial of function f carries share_f/Slots_f times its
		// HT weight.
		cf := share / t.Slots
		kishW += cf * t.SDC.W
		kishW2 += cf * cf * t.SDC.W2
	}
	if c.Trials > 0 {
		if n := c.Counts[ErroredName]; n > 0 {
			c.Rates[ErroredName] = float64(n) / float64(c.Trials)
		}
	}
	c.SDC = c.Rates[SDCName]
	if pq := c.SDC * (1 - c.SDC); pq > 0 && variance > 0 {
		c.EffN = pq / variance
	} else {
		c.EffN = stats.KishNeff(kishW, kishW2)
	}
	if c.EffN > 0 {
		c.SDCLo, c.SDCHi = stats.WeightedWilsonBounds(c.SDC, c.EffN)
	} else {
		c.SDCLo, c.SDCHi = stats.WilsonBounds(c.SDC, c.Classified)
	}
	return c
}

// OutcomeNames returns the outcome names present in the composed counts,
// sorted, for deterministic reporting.
func (c Composed) OutcomeNames() []string {
	names := make([]string, 0, len(c.Counts))
	for o := range c.Counts {
		names = append(names, o)
	}
	sort.Strings(names)
	return names
}
