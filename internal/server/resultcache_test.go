package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// submitAndWait submits req and blocks until the job terminates,
// failing the test unless it lands in wantState.
func submitAndWait(t *testing.T, s *Server, req *SubmitRequest, wantState JobState) *Job {
	t.Helper()
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st != wantState {
		t.Fatalf("state = %s (%s), want %s", st, j.status().Error, wantState)
	}
	return j
}

// stripIdentity clears the job-specific fields of a result so two
// jobs' payloads can be compared byte for byte.
func stripIdentity(res *Result) []byte {
	cp := *res
	cp.ID, cp.Cached = "", false
	b, err := json.Marshal(cp)
	if err != nil {
		panic(err)
	}
	return b
}

// cacheEntryFiles lists the JSON entry files under a cache directory.
func cacheEntryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && filepath.Ext(path) == ".json" {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestResultCacheHitByteIdentical: resubmitting an identical campaign
// is served from the result cache — no shard runs — and the payload is
// byte-identical to the first job's, even when the resubmission asks
// for a different shard count (sharding is merge-invariant, so it is
// deliberately outside the cache key).
func TestResultCacheHitByteIdentical(t *testing.T) {
	cacheDir := t.TempDir()
	s := newSupervisedServer(t, func(c *Config) { c.ResultCacheDir = cacheDir })
	s.Start()

	req := &SubmitRequest{Program: "pathfinder", N: 40, Seed: 42, Shards: 2}
	j1 := submitAndWait(t, s, req, JobDone)
	res1 := j1.Result()
	if res1 == nil || res1.Cached {
		t.Fatalf("first run: result %+v, want a live (uncached) run", res1)
	}

	req2 := &SubmitRequest{Program: "pathfinder", N: 40, Seed: 42, Shards: 5}
	j2 := submitAndWait(t, s, req2, JobDone)
	res2 := j2.Result()
	if res2 == nil || !res2.Cached {
		t.Fatalf("second run: result %+v, want cached", res2)
	}
	for i, sh := range j2.status().Shards {
		if sh.Attempts != 0 {
			t.Errorf("cache-hit job ran shard %d (%d attempts)", i, sh.Attempts)
		}
	}
	if got, want := stripIdentity(res2), stripIdentity(res1); string(got) != string(want) {
		t.Errorf("cached result diverges:\n  got  %s\n  want %s", got, want)
	}
	if res2.ID != j2.ID {
		t.Errorf("cached result carries ID %q, want the hitting job's %q", res2.ID, j2.ID)
	}

	// A different seed is a different campaign: must re-run live.
	j3 := submitAndWait(t, s, &SubmitRequest{Program: "pathfinder", N: 40, Seed: 43, Shards: 2}, JobDone)
	if res3 := j3.Result(); res3 == nil || res3.Cached {
		t.Errorf("different seed served from cache: %+v", j3.Result())
	}
}

// TestResultCachePruneKeySeparation: pruned and unpruned submissions of
// the same campaign never share a cache entry — the prune mask hash is
// part of the key, so a bitlive rule change can only ever invalidate
// pruned entries. The served results are still byte-identical (exact
// reweighting), which is exactly why the separation has to live in the
// key rather than the payload.
func TestResultCachePruneKeySeparation(t *testing.T) {
	cacheDir := t.TempDir()
	s := newSupervisedServer(t, func(c *Config) { c.ResultCacheDir = cacheDir })
	s.Start()

	req := &SubmitRequest{Program: "rgb2gray", N: 30, Seed: 9, Shards: 2}
	res1 := submitAndWait(t, s, req, JobDone).Result()

	prunedReq := *req
	prunedReq.PruneBits = true
	j2 := submitAndWait(t, s, &prunedReq, JobDone)
	res2 := j2.Result()
	if res2.Cached {
		t.Fatal("pruned submission served from the unpruned cache entry")
	}
	if got, want := stripIdentity(res2), stripIdentity(res1); string(got) != string(want) {
		t.Errorf("pruned result diverges from unpruned:\n  got  %s\n  want %s", got, want)
	}
	if files := cacheEntryFiles(t, cacheDir); len(files) != 2 {
		t.Fatalf("cache holds %d entries, want 2 (one per prune setting)", len(files))
	}

	// Same-setting resubmissions hit their own entries.
	if !submitAndWait(t, s, &prunedReq, JobDone).Result().Cached {
		t.Error("pruned resubmission missed its cache entry")
	}
	if !submitAndWait(t, s, req, JobDone).Result().Cached {
		t.Error("unpruned resubmission missed its cache entry")
	}
}

// TestResultCacheTornEntryMisses: an entry torn by a crash mid-write
// (simulated by truncation) is detected and treated as a miss — the
// job re-runs live and produces the same result.
func TestResultCacheTornEntryMisses(t *testing.T) {
	cacheDir := t.TempDir()
	s := newSupervisedServer(t, func(c *Config) { c.ResultCacheDir = cacheDir })
	s.Start()

	req := &SubmitRequest{Program: "libquantum", N: 30, Seed: 7, Shards: 2}
	res1 := submitAndWait(t, s, req, JobDone).Result()

	files := cacheEntryFiles(t, cacheDir)
	if len(files) != 1 {
		t.Fatalf("cache holds %d entries, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := submitAndWait(t, s, req, JobDone)
	res2 := j2.Result()
	if res2.Cached {
		t.Fatal("torn cache entry was served as a hit")
	}
	if got, want := stripIdentity(res2), stripIdentity(res1); string(got) != string(want) {
		t.Errorf("re-run after torn entry diverges:\n  got  %s\n  want %s", got, want)
	}
	// The re-run repaired the entry: a third submission hits again.
	j3 := submitAndWait(t, s, req, JobDone)
	if !j3.Result().Cached {
		t.Error("cache not repopulated after torn-entry re-run")
	}
}

// TestResultCacheSurvivesRestart: the cache lives on disk, so a fresh
// server process (even over a brand-new spool) serves a campaign an
// earlier incarnation completed.
func TestResultCacheSurvivesRestart(t *testing.T) {
	cacheDir := t.TempDir()
	req := &SubmitRequest{Program: "hotspot", N: 24, Seed: 11, Shards: 2}

	s1 := newSupervisedServer(t, func(c *Config) { c.ResultCacheDir = cacheDir })
	s1.Start()
	res1 := submitAndWait(t, s1, req, JobDone).Result()

	s2 := newSupervisedServer(t, func(c *Config) { c.ResultCacheDir = cacheDir })
	s2.Start()
	res2 := submitAndWait(t, s2, req, JobDone).Result()
	if !res2.Cached {
		t.Fatal("restarted server missed a cached campaign")
	}
	if got, want := stripIdentity(res2), stripIdentity(res1); string(got) != string(want) {
		t.Errorf("cross-restart cached result diverges:\n  got  %s\n  want %s", got, want)
	}
}

// TestResultCacheSkipsDirtyResults: cancelled (incomplete) jobs never
// enter the cache — the next identical submission runs live.
func TestResultCacheSkipsDirtyResults(t *testing.T) {
	cacheDir := t.TempDir()
	s := newSupervisedServer(t, func(c *Config) {
		c.ResultCacheDir = cacheDir
		c.ChaosTrialDelay = 2 * time.Millisecond
	})
	s.Start()

	req := &SubmitRequest{Program: "bfs-parboil", N: 400, Seed: 5, Shards: 2}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j.requestCancel() {
		j.setState(JobCancelled, "cancelled by client")
	}
	if st := waitTerminal(t, j); st != JobCancelled {
		t.Fatalf("state = %s, want cancelled", st)
	}

	if files := cacheEntryFiles(t, cacheDir); len(files) != 0 {
		t.Fatalf("cancelled job left %d cache entries", len(files))
	}
	j2 := submitAndWait(t, s, &SubmitRequest{Program: "bfs-parboil", N: 400, Seed: 5, Shards: 2}, JobDone)
	if j2.Result().Cached {
		t.Error("incomplete campaign was served from cache")
	}
}
