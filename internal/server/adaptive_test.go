package server

import (
	"context"
	"strings"
	"testing"

	"trident/internal/fault"
	"trident/internal/progs"
)

// localAdaptive runs the reference adaptive campaign for req in process
// — the ground truth a two-wave server job must reproduce exactly.
func localAdaptive(t *testing.T, req *SubmitRequest) *fault.AdaptiveResult {
	t.Helper()
	p, err := progs.ByName(req.Program)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(p.Build(), fault.Options{Seed: req.Seed, Adaptive: &fault.AdaptiveConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := inj.CampaignAdaptive(context.Background(), req.N)
	if err != nil {
		t.Fatal(err)
	}
	return ar
}

// TestAdaptiveJobMatchesLocal: a sharded adaptive server job — pilot
// wave, cross-shard merge, plan re-derivation in every main-wave worker
// — reproduces an in-process adaptive campaign bit for bit: same pilot
// prefix, same derived plan, same thinned main subset in the same
// sampling order, same weighted estimates.
func TestAdaptiveJobMatchesLocal(t *testing.T) {
	s := newSupervisedServer(t, nil)
	s.Start()

	req := &SubmitRequest{Program: "rgb2gray", N: 150, Seed: 9, Shards: 3, StratifyAdaptive: true}
	res := submitAndWait(t, s, req, JobDone).Result()
	if res == nil || !res.Adaptive || !res.Stratified {
		t.Fatalf("result = %+v, want an adaptive stratified result", res)
	}
	want := localAdaptive(t, req)
	if res.PilotExecuted != want.PilotExecuted || want.PilotExecuted <= 0 ||
		want.PilotExecuted > want.PilotSlots {
		t.Fatalf("pilot executed %d, local %d of %d pilot slots",
			res.PilotExecuted, want.PilotExecuted, want.PilotSlots)
	}
	if res.ExecutedN != want.ExecutedN() || len(res.Trials) != want.ExecutedN() {
		t.Fatalf("executed %d trials (%d records), local ran %d",
			res.ExecutedN, len(res.Trials), want.ExecutedN())
	}
	if res.ExecutedN > req.N {
		t.Fatalf("executed %d trials, over the %d-slot budget", res.ExecutedN, req.N)
	}
	if res.Missing != 0 {
		t.Fatalf("missing = %d, want 0", res.Missing)
	}
	for i, tr := range want.Trials {
		got := res.Trials[i]
		if got.Func != tr.Instr.Block.Fn.Name || got.Instr != tr.Instr.ID ||
			got.Instance != tr.Instance || got.Bit != tr.Bit ||
			got.Outcome != tr.Outcome.String() {
			t.Fatalf("trial %d: server %+v, local %+v", i, got, tr)
		}
	}
	if res.WeightedSDC != want.WeightedSDC() {
		t.Errorf("weighted SDC %v, local %v", res.WeightedSDC, want.WeightedSDC())
	}
	if res.WeightedErrorBar95 != want.WeightedErrorBar95() {
		t.Errorf("weighted error bar %v, local %v", res.WeightedErrorBar95, want.WeightedErrorBar95())
	}
	if res.EffectiveN != want.EffectiveN() {
		t.Errorf("effective n %v, local %v", res.EffectiveN, want.EffectiveN())
	}
}

// TestAdaptiveJobExecWorkers: the two-wave protocol survives exec mode,
// where each wave's shards run as separate child processes and the main
// wave's plan travels only through the merged pilot checkpoint on disk.
func TestAdaptiveJobExecWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("exec workers are slow in -short mode")
	}
	s := newSupervisedServer(t, func(c *Config) {
		c.WorkerMode = "exec"
	})
	s.Start()

	req := &SubmitRequest{Program: "nibblepack", N: 90, Seed: 21, Shards: 2, StratifyAdaptive: true}
	res := submitAndWait(t, s, req, JobDone).Result()
	if res == nil || !res.Adaptive {
		t.Fatalf("result = %+v, want an adaptive result", res)
	}
	want := localAdaptive(t, req)
	if res.ExecutedN != want.ExecutedN() || res.PilotExecuted != want.PilotExecuted {
		t.Fatalf("exec job executed %d (pilot %d), local %d (pilot %d)",
			res.ExecutedN, res.PilotExecuted, want.ExecutedN(), want.PilotExecuted)
	}
	if res.WeightedSDC != want.WeightedSDC() || res.EffectiveN != want.EffectiveN() {
		t.Fatalf("exec job weighted SDC %v (eff n %v), local %v (%v)",
			res.WeightedSDC, res.EffectiveN, want.WeightedSDC(), want.EffectiveN())
	}
}

// TestAdaptiveShardCrashRetry: a main-wave shard that crashes mid-slice
// (leaving a partial checkpoint) is retried from that checkpoint, and
// the finished job still matches the local reference — the two-wave
// protocol composes with the supervisor's crash tolerance.
func TestAdaptiveShardCrashRetry(t *testing.T) {
	s := newSupervisedServer(t, nil)
	s.runner = &flakyRunner{inner: s.runner, failures: map[int]int{0: 2}, partial: true}
	s.Start()

	req := &SubmitRequest{Program: "rgb2gray", N: 120, Seed: 5, Shards: 2, StratifyAdaptive: true}
	res := submitAndWait(t, s, req, JobDone).Result()
	want := localAdaptive(t, req)
	if res.ExecutedN != want.ExecutedN() || res.Missing != 0 {
		t.Fatalf("retried adaptive job executed %d (missing %d), local %d",
			res.ExecutedN, res.Missing, want.ExecutedN())
	}
	if res.WeightedSDC != want.WeightedSDC() {
		t.Fatalf("retried adaptive job weighted SDC %v, local %v", res.WeightedSDC, want.WeightedSDC())
	}
}

// TestResultCacheAdaptiveKeySeparation: plain, stratified and adaptive
// submissions of the same campaign all get their own result-cache
// entries, and an adaptive resubmission hits its entry byte for byte.
func TestResultCacheAdaptiveKeySeparation(t *testing.T) {
	cacheDir := t.TempDir()
	s := newSupervisedServer(t, func(c *Config) { c.ResultCacheDir = cacheDir })
	s.Start()

	plain := &SubmitRequest{Program: "nibblepack", N: 60, Seed: 4, Shards: 2}
	plainRes := submitAndWait(t, s, plain, JobDone).Result()

	adapt := *plain
	adapt.StratifyAdaptive = true
	j2 := submitAndWait(t, s, &adapt, JobDone)
	res2 := j2.Result()
	if res2.Cached {
		t.Fatal("adaptive submission served from the plain cache entry")
	}
	if !res2.Adaptive || !res2.Stratified || res2.PilotExecuted <= 0 {
		t.Fatalf("adaptive result: adaptive=%v stratified=%v pilot=%d, want a pilot-backed adaptive result",
			res2.Adaptive, res2.Stratified, res2.PilotExecuted)
	}
	if len(res2.Trials) >= len(plainRes.Trials) {
		t.Fatalf("adaptive job executed %d trials (plain ran %d), want a strict thinned subset",
			len(res2.Trials), len(plainRes.Trials))
	}

	strat := *plain
	strat.Stratify = true
	if submitAndWait(t, s, &strat, JobDone).Result().Cached {
		t.Fatal("stratified submission served from another mode's cache entry")
	}
	if files := cacheEntryFiles(t, cacheDir); len(files) != 3 {
		t.Fatalf("cache holds %d entries, want 3 (one per sampling mode)", len(files))
	}

	j4 := submitAndWait(t, s, &adapt, JobDone)
	res4 := j4.Result()
	if !res4.Cached {
		t.Fatal("adaptive resubmission missed its cache entry")
	}
	if got, want := stripIdentity(res4), stripIdentity(res2); string(got) != string(want) {
		t.Errorf("cached adaptive result diverges:\n  got  %s\n  want %s", got, want)
	}
}

// TestAdaptiveStratifyMutuallyExclusive: a submission asking for both
// sampling modes is rejected at admission with a field-attributed error.
func TestAdaptiveStratifyMutuallyExclusive(t *testing.T) {
	req := &SubmitRequest{Program: "rgb2gray", N: 10, Stratify: true, StratifyAdaptive: true}
	err := req.Validate(Limits{})
	if err == nil {
		t.Fatal("stratify+stratify_adaptive accepted")
	}
	var re *RequestError
	if !errorsAs(err, &re) || re.Field != "stratify_adaptive" {
		t.Fatalf("error = %v, want a stratify_adaptive RequestError", err)
	}
	if !strings.Contains(re.Msg, "mutually exclusive") {
		t.Fatalf("error msg = %q", re.Msg)
	}
}

// errorsAs is a tiny local wrapper so the test reads without importing
// errors for one call.
func errorsAs(err error, target **RequestError) bool {
	re, ok := err.(*RequestError)
	if ok {
		*target = re
	}
	return ok
}
