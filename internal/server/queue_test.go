package server

import (
	"fmt"
	"testing"
)

func testJob(id string) *Job {
	return newJob(id, "", &SubmitRequest{Program: "pathfinder", N: 10, Shards: 2})
}

func TestQueueFIFO(t *testing.T) {
	q := newQueue(0)
	for i := 0; i < 5; i++ {
		if !q.add(testJob(fmt.Sprintf("job-%d", i)), true) {
			t.Fatalf("add %d rejected", i)
		}
	}
	if d := q.depth(); d != 5 {
		t.Fatalf("depth = %d, want 5", d)
	}
	for i := 0; i < 5; i++ {
		j := q.pop()
		if j == nil || j.ID != fmt.Sprintf("job-%d", i) {
			t.Fatalf("pop %d = %v, want job-%d", i, j, i)
		}
	}
	if j := q.pop(); j != nil {
		t.Fatalf("pop on empty = %v", j)
	}
}

func TestQueueCap(t *testing.T) {
	q := newQueue(2)
	if !q.add(testJob("a"), true) || !q.add(testJob("b"), true) {
		t.Fatal("adds under cap rejected")
	}
	if q.add(testJob("c"), true) {
		t.Fatal("add over cap accepted")
	}
	if q.get("c") != nil {
		t.Fatal("rejected job was registered")
	}
	// Registration without enqueue ignores the cap (terminal jobs at
	// recovery).
	if !q.add(testJob("d"), false) {
		t.Fatal("non-enqueued add rejected")
	}
	if q.depth() != 2 {
		t.Fatalf("depth = %d, want 2", q.depth())
	}
}

func TestQueueSkipsCancelled(t *testing.T) {
	q := newQueue(0)
	a, b := testJob("a"), testJob("b")
	q.add(a, true)
	q.add(b, true)
	a.state = JobCancelled // cancelled while queued
	if j := q.pop(); j != b {
		t.Fatalf("pop = %v, want b", j)
	}
	if j := q.pop(); j != nil {
		t.Fatalf("second pop = %v, want nil", j)
	}
	// Cancelled job is still registered for status lookups.
	if q.get("a") != a {
		t.Fatal("cancelled job lost from registry")
	}
	if got := len(q.list()); got != 2 {
		t.Fatalf("list len = %d, want 2", got)
	}
}
