// This file is the server's whole-job result cache: a thin layer over
// internal/cache that short-circuits a job before any shard launches
// when a previous job already ran the identical campaign. The key is
// the content address of the campaign, not of the submission: the
// canonical module hash, the fault-model version, the seed and the
// trial count. Deliberately absent from the key:
//
//   - Shards: the shard merge is bit-identical for any shard count
//     (the sharding acceptance suite proves it), so a 4-shard job may
//     serve an 8-shard submission's result.
//   - Engine: legacy and decoded engines are bit-identical (the
//     differential suite proves it), so results are shared across
//     engines.
//   - SnapshotInterval / Workers: both are performance knobs with no
//     effect on trial outcomes.
//
// Only clean results enter the cache: terminal state done, zero
// missing trials, no failed shards, no errored trials. Degraded or
// cancelled jobs always re-run. The stored payload carries no job
// identity (ID, state) so hits from different jobs are byte-identical
// modulo the ID the server stamps on the way out.

package server

import (
	"fmt"
	"os"

	"trident/internal/bitlive"
	"trident/internal/fault"
	"trident/internal/hashutil"
)

// resultKeyKind tags job-result entries within a cache directory that
// may also hold per-function profiles.
const resultKeyKind = "job-result"

// resultKey is the content address of a whole-job campaign result.
type resultKey struct {
	Kind       string `json:"kind"`
	ModuleHash string `json:"module_hash"`
	Model      string `json:"model"`
	Seed       uint64 `json:"seed"`
	N          int    `json:"n"`
	// Prune is the hex bitlive.Report.ModuleHash when the job prunes
	// masked bits, empty otherwise. Exact reweighting makes pruned and
	// unpruned outcomes identical when the analysis is sound, but the
	// soundness guarantee is versioned with the analysis — keying on the
	// mask hash means a bitlive rule change invalidates exactly the
	// pruned entries, and unpruned keys never move.
	Prune string `json:"prune,omitempty"`
	// Stratify is the stratification content address (influence table
	// hash folded with the plan hash, fault.StratifyHashFor) for
	// stratified jobs, empty otherwise. A stratified result holds a
	// thinned, reweighted trial subset, so it must never serve a plain
	// submission (or vice versa), and a classifier or plan change
	// invalidates exactly the stratified entries.
	Stratify string `json:"stratify,omitempty"`
	// Adaptive is the adaptive-campaign content address (influence table
	// hash folded with the pilot fraction and rate floor,
	// fault.AdaptiveHashFor) for adaptive jobs, empty otherwise. The
	// derived Neyman plan is a pure function of these plus the module,
	// seed and n already in the key, so the key never carries the plan
	// itself — and a classifier or default change invalidates exactly the
	// adaptive entries.
	Adaptive string `json:"adaptive,omitempty"`
}

// resultCacheKey derives j's cache key, or reports false when the
// cache is off or the module cannot be built (admission already
// validated it, so the latter is effectively unreachable).
func (s *Server) resultCacheKey(j *Job) (resultKey, bool) {
	if s.resultCache == nil {
		return resultKey{}, false
	}
	mod, err := j.req.BuildModule()
	if err != nil {
		return resultKey{}, false
	}
	prune := ""
	if j.req.PruneBits {
		prune = hashutil.Hex(bitlive.Analyze(mod).ModuleHash(mod))
	}
	stratify := ""
	if j.req.Stratify {
		stratify = fault.StratifyHashFor(mod, bitlive.DefaultPlan())
	}
	adaptive := ""
	if j.req.StratifyAdaptive {
		adaptive = fault.AdaptiveHashFor(mod, fault.AdaptiveConfig{})
	}
	return resultKey{
		Kind:       resultKeyKind,
		ModuleHash: hashutil.Hex(hashutil.Module(mod)),
		Model:      fault.ModelVersion,
		Seed:       j.req.Seed,
		N:          j.req.N,
		Prune:      prune,
		Stratify:   stratify,
		Adaptive:   adaptive,
	}, true
}

// lookupResult consults the result cache for j. A hit returns a copy
// of the cached result stamped with j's identity and Cached=true.
// Anything suspicious about the stored payload — wrong trial count,
// missing trials, errored trials — is treated as a miss, mirroring the
// store's own torn-entry policy.
func (s *Server) lookupResult(j *Job) (*Result, bool) {
	key, ok := s.resultCacheKey(j)
	if !ok {
		return nil, false
	}
	var payload Result
	if !s.resultCache.Get(key, &payload) {
		return nil, false
	}
	// A stratified (or adaptive) result legitimately records fewer trials
	// than the N drawn slots — only the executed subset — so its
	// completeness check is against its own executed count; the key's
	// stratification/adaptive hash guarantees that count is the right one
	// for this submission.
	wantTrials := j.req.N
	if payload.Stratified {
		wantTrials = payload.ExecutedN
	}
	if payload.N != j.req.N || payload.Missing != 0 ||
		payload.Stratified != (j.req.Stratify || j.req.StratifyAdaptive) ||
		payload.Adaptive != j.req.StratifyAdaptive || len(payload.Trials) != wantTrials {
		return nil, false
	}
	for i := range payload.Trials {
		if payload.Trials[i].Outcome == fault.Errored.String() {
			return nil, false
		}
	}
	res := payload
	res.ID = j.ID
	res.State = string(JobDone)
	res.Cached = true
	return &res, true
}

// storeResult persists a finished job's result when — and only when —
// it is clean: done, complete, no degraded shards, no errored trials.
// The payload is stripped of job identity before storage.
func (s *Server) storeResult(j *Job, state JobState, res *Result) {
	if s.resultCache == nil || res == nil || state != JobDone {
		return
	}
	if res.Missing != 0 || len(res.FailedShards) != 0 || res.Counts[fault.Errored.String()] != 0 {
		return
	}
	key, ok := s.resultCacheKey(j)
	if !ok {
		return
	}
	payload := *res
	payload.ID, payload.State, payload.Cached = "", "", false
	if err := s.resultCache.Put(key, payload); err != nil {
		fmt.Fprintf(os.Stderr, "server: result cache write for job %s: %v\n", j.ID, err)
	}
}
