package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"trident/internal/fault"
)

// flakyRunner wraps another runner, injecting failures: shard → number
// of attempts to fail before delegating. When partial is set, a failing
// attempt first runs the real shard with a context cancelled after a
// few trials, so the crash leaves a half-written checkpoint behind —
// the debris the retry must resume over.
type flakyRunner struct {
	inner    shardRunner
	mu       sync.Mutex
	failures map[int]int
	partial  bool
}

func (r *flakyRunner) runShard(ctx context.Context, j *Job, shard int, phase shardPhase, progress func(shardProgress)) error {
	r.mu.Lock()
	inject := r.failures[shard] > 0
	if inject {
		r.failures[shard]--
	}
	r.mu.Unlock()
	if !inject {
		return r.inner.runShard(ctx, j, shard, phase, progress)
	}
	if r.partial {
		// Run the real shard but die after a few completed trials.
		subCtx, cancel := context.WithCancel(ctx)
		done := 0
		_ = r.inner.runShard(subCtx, j, shard, phase, func(sp shardProgress) {
			done = sp.done
			progress(sp)
			if done >= 3 {
				cancel()
			}
		})
		cancel()
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return errors.New("injected shard crash")
}

// newSupervisedServer builds a started inproc server over a temp spool
// with fast retries, returning it plus its cleanup.
func newSupervisedServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Spool:             t.TempDir(),
		MaxConcurrentJobs: 2,
		RetryBase:         time.Millisecond,
		ShardRetries:      2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s
}

// waitTerminal blocks until the job leaves the queue and reaches a
// terminal state (or the test times out).
func waitTerminal(t *testing.T, j *Job) JobState {
	t.Helper()
	deadline := time.After(60 * time.Second)
	for {
		ch := j.watch()
		if st := j.State(); st.Terminal() {
			return st
		}
		select {
		case <-ch:
		case <-deadline:
			t.Fatalf("job %s stuck in state %s", j.ID, j.State())
		}
	}
}

// directTrials runs the same campaign through a bare Injector — the
// reference half of every bit-identity comparison.
func directTrials(t *testing.T, req *SubmitRequest) []TrialRecord {
	t.Helper()
	mod, err := req.BuildModule()
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(mod, req.faultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := inj.CampaignRandom(context.Background(), req.N)
	if err != nil {
		t.Fatal(err)
	}
	return wireTrials(res)
}

func diffTrials(t *testing.T, got, want []TrialRecord, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d trials, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: trial %d diverges:\n  got  %+v\n  want %+v", label, i, got[i], want[i])
		}
	}
}

// TestShardCrashRetrySucceeds: a shard that crashes twice (leaving a
// partial checkpoint each time) is retried from that checkpoint and the
// job still completes with results bit-identical to a direct run.
func TestShardCrashRetrySucceeds(t *testing.T) {
	s := newSupervisedServer(t, nil)
	s.runner = &flakyRunner{inner: s.runner, failures: map[int]int{0: 2}, partial: true}
	s.Start()

	req := &SubmitRequest{Program: "pathfinder", N: 40, Seed: 42, Shards: 2}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st != JobDone {
		t.Fatalf("state = %s (%s), want done", st, j.status().Error)
	}
	st := j.status()
	if st.Shards[0].Attempts != 3 {
		t.Errorf("shard 0 attempts = %d, want 3", st.Shards[0].Attempts)
	}
	res := j.Result()
	if res == nil || res.Missing != 0 {
		t.Fatalf("result = %+v, want complete", res)
	}
	diffTrials(t, res.Trials, directTrials(t, req), "crash-retried job")
}

// TestShardRetryBudgetExhausted: a shard that never stops crashing
// degrades the job to a partial result carrying that shard's error —
// the other shard's trials are served, not discarded.
func TestShardRetryBudgetExhausted(t *testing.T) {
	s := newSupervisedServer(t, nil)
	s.runner = &flakyRunner{inner: s.runner, failures: map[int]int{1: 100}, partial: true}
	s.Start()

	req := &SubmitRequest{Program: "pathfinder", N: 40, Seed: 7, Shards: 2}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st != JobPartial {
		t.Fatalf("state = %s, want partial", st)
	}
	res := j.Result()
	if res == nil {
		t.Fatal("no result for partial job")
	}
	if res.Missing == 0 {
		t.Error("partial job reports no missing trials")
	}
	if len(res.FailedShards) != 1 || res.FailedShards[0].Shard != 1 {
		t.Fatalf("FailedShards = %+v, want shard 1", res.FailedShards)
	}
	// Shard 0 completed: its slice of the direct run must be present
	// and identical. Shard 0 owns trials [0, 20).
	want := directTrials(t, req)
	lo, hi := fault.ShardRange(req.N, 0, req.Shards)
	diffTrials(t, res.Trials[:hi-lo], want[lo:hi], "surviving shard")
}

func TestBackoffDelay(t *testing.T) {
	base := 100 * time.Millisecond
	for attempt := 0; attempt < 6; attempt++ {
		d := backoffDelay(base, attempt, 42, 1)
		nominal := base << uint(attempt)
		if d < nominal/2 || d > nominal {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, nominal/2, nominal)
		}
		// Deterministic for a given (seed, shard, attempt).
		if d2 := backoffDelay(base, attempt, 42, 1); d2 != d {
			t.Errorf("attempt %d: non-deterministic backoff %v vs %v", attempt, d, d2)
		}
	}
	// Cap: huge attempts must not overflow or exceed 30s.
	if d := backoffDelay(base, 40, 1, 2); d > 30*time.Second {
		t.Errorf("capped delay = %v", d)
	}
	// Shards that died together back off differently.
	same := 0
	for shard := 0; shard < 8; shard++ {
		if backoffDelay(base, 2, 9, shard) == backoffDelay(base, 2, 9, (shard+1)%8) {
			same++
		}
	}
	if same == 8 {
		t.Error("jitter does not decorrelate shards")
	}
}

// TestWallClockBudget: a job over its wall budget terminates partial
// with the budget named in the error, instead of running forever.
func TestWallClockBudget(t *testing.T) {
	s := newSupervisedServer(t, func(c *Config) {
		c.ChaosTrialDelay = 20 * time.Millisecond
	})
	s.Start()
	req := &SubmitRequest{Program: "pathfinder", N: 400, Seed: 3, Shards: 2, MaxWallMS: 300}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st != JobPartial {
		t.Fatalf("state = %s, want partial", st)
	}
	if stErr := j.status().Error; stErr == "" {
		t.Error("partial job carries no error")
	} else if want := fmt.Sprintf("wall-clock budget (%v) exhausted", 300*time.Millisecond); stErr != want {
		t.Errorf("error = %q, want %q", stErr, want)
	}
}
