// This file wires the campaign server into telemetry, following the
// nil-safe pattern of fault's campaignMetrics: a nil registry yields a
// nil *serverMetrics whose methods all no-op, so the hot paths carry no
// conditionals and tests can run without telemetry.

package server

import (
	"time"

	"trident/internal/telemetry"
)

// serverMetrics holds the server.* instruments. All methods are safe on
// a nil receiver.
type serverMetrics struct {
	submitted *telemetry.Counter // server.jobs.submitted
	rejected  *telemetry.Counter // server.jobs.rejected
	completed *telemetry.Counter // server.jobs.completed
	partial   *telemetry.Counter // server.jobs.partial
	failed    *telemetry.Counter // server.jobs.failed
	cancelled *telemetry.Counter // server.jobs.cancelled
	resumed   *telemetry.Counter // server.jobs.resumed
	running   *telemetry.Gauge   // server.jobs.running
	depth     *telemetry.Gauge   // server.queue.depth

	shardRuns     *telemetry.Counter // server.shards.runs
	shardRetries  *telemetry.Counter // server.shards.retries
	shardFailures *telemetry.Counter // server.shards.failures

	jobUS *telemetry.Histogram // server.job_us

	httpRequests *telemetry.Counter // server.http.requests
	httpErrors   *telemetry.Counter // server.http.errors
}

func newServerMetrics(reg *telemetry.Registry) *serverMetrics {
	if reg == nil {
		return nil
	}
	return &serverMetrics{
		submitted:     reg.Counter("server.jobs.submitted"),
		rejected:      reg.Counter("server.jobs.rejected"),
		completed:     reg.Counter("server.jobs.completed"),
		partial:       reg.Counter("server.jobs.partial"),
		failed:        reg.Counter("server.jobs.failed"),
		cancelled:     reg.Counter("server.jobs.cancelled"),
		resumed:       reg.Counter("server.jobs.resumed"),
		running:       reg.Gauge("server.jobs.running"),
		depth:         reg.Gauge("server.queue.depth"),
		shardRuns:     reg.Counter("server.shards.runs"),
		shardRetries:  reg.Counter("server.shards.retries"),
		shardFailures: reg.Counter("server.shards.failures"),
		jobUS:         reg.Histogram("server.job_us"),
		httpRequests:  reg.Counter("server.http.requests"),
		httpErrors:    reg.Counter("server.http.errors"),
	}
}

func (m *serverMetrics) request(errored bool) {
	if m == nil {
		return
	}
	m.httpRequests.Inc()
	if errored {
		m.httpErrors.Inc()
	}
}

func (m *serverMetrics) submit(accepted bool) {
	if m == nil {
		return
	}
	if accepted {
		m.submitted.Inc()
	} else {
		m.rejected.Inc()
	}
}

func (m *serverMetrics) jobStart() {
	if m == nil {
		return
	}
	m.running.Add(1)
}

// jobEnd records a job reaching a terminal state (or being re-queued by
// a drain, in which case state is JobQueued and only the gauge moves).
func (m *serverMetrics) jobEnd(state JobState, start time.Time) {
	if m == nil {
		return
	}
	m.running.Add(-1)
	m.jobUS.Since(start)
	switch state {
	case JobDone:
		m.completed.Inc()
	case JobPartial:
		m.partial.Inc()
	case JobFailed:
		m.failed.Inc()
	case JobCancelled:
		m.cancelled.Inc()
	}
}

func (m *serverMetrics) shardRun(attempt int) {
	if m == nil {
		return
	}
	m.shardRuns.Inc()
	if attempt > 0 {
		m.shardRetries.Inc()
	}
}

func (m *serverMetrics) shardFailed() {
	if m == nil {
		return
	}
	m.shardFailures.Inc()
}

func (m *serverMetrics) resumedJob() {
	if m == nil {
		return
	}
	m.resumed.Inc()
}

func (m *serverMetrics) queueDepth(n int) {
	if m == nil {
		return
	}
	m.depth.Set(int64(n))
}
