// This file defines the campaign server's wire protocol: the JSON
// submission, status, result and event-stream types, strict decoding
// (unknown fields rejected, size-capped bodies, no trailing garbage)
// and validation with field-attributed errors. The decode path is
// fuzzed (FuzzDecodeSubmit): whatever bytes arrive, the worst outcome
// is a *RequestError, never a panic and never a silently-misread
// campaign. Parsing is strict rather than lenient because a submission
// misread as something else re-runs hours of fault injection under the
// wrong parameters — there is no harmless interpretation of a typo.

package server

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"trident/internal/bitlive"
	"trident/internal/fault"
	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/progs"
)

// Limits bound what a single submission may ask of the server. The
// zero value of each field selects the default; the server clamps
// every job to these at admission, so one tenant cannot starve the
// queue with an unbounded campaign.
type Limits struct {
	// MaxTrials caps a job's trial count n (default 1_000_000).
	MaxTrials int
	// MaxShards caps a job's shard count (default 16).
	MaxShards int
	// MaxWorkers caps per-shard trial workers (default 16).
	MaxWorkers int
	// MaxIRBytes caps the submitted IR text (default 4 MiB).
	MaxIRBytes int
	// MaxWall caps a job's wall-clock budget; jobs requesting none get
	// it as their budget (default 15 minutes).
	MaxWall time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.MaxTrials <= 0 {
		l.MaxTrials = 1_000_000
	}
	if l.MaxShards <= 0 {
		l.MaxShards = 16
	}
	if l.MaxWorkers <= 0 {
		l.MaxWorkers = 16
	}
	if l.MaxIRBytes <= 0 {
		l.MaxIRBytes = 4 << 20
	}
	if l.MaxWall <= 0 {
		l.MaxWall = 15 * time.Minute
	}
	return l
}

// SubmitRequest is a campaign submission: a program (built-in benchmark
// name or IR text), the campaign shape, and optional per-job budgets.
// Field semantics mirror cmd/fi's flags and fault.Options.
type SubmitRequest struct {
	// Program names a built-in benchmark (exclusive with IR).
	Program string `json:"program,omitempty"`
	// IR is textual IR for the module under test (exclusive with Program).
	IR string `json:"ir,omitempty"`
	// N is the number of injection trials (required, ≥ 1).
	N int `json:"n"`
	// Seed drives the campaign's deterministic sampling.
	Seed uint64 `json:"seed,omitempty"`
	// Shards splits the trial range across that many independently
	// checkpointed shard workers (0 = server default). Sharding is
	// transparent: results are bit-identical for every shard count.
	Shards int `json:"shards,omitempty"`
	// Workers is the per-shard trial worker count (0 = fault default).
	Workers int `json:"workers,omitempty"`
	// Engine selects the interpreter engine ("", "legacy", "decoded").
	Engine string `json:"engine,omitempty"`
	// SnapshotInterval enables snapshot-replay trials (see fault.Options).
	SnapshotInterval uint64 `json:"snapshot_interval,omitempty"`
	// MaxRetries bounds per-trial retries of transient engine failures.
	MaxRetries int `json:"max_retries,omitempty"`
	// TrialTimeoutMS is the per-trial wall-clock watchdog in ms (0 = none).
	TrialTimeoutMS int64 `json:"trial_timeout_ms,omitempty"`
	// MaxWallMS is the job's wall-clock budget in ms (0 = server max).
	// A job exceeding it degrades to a partial result; it never runs
	// unbounded.
	MaxWallMS int64 `json:"max_wall_ms,omitempty"`
	// PruneBits enables static bit-liveness pruning (internal/bitlive):
	// trials on provably-masked bits are recorded Benign without
	// execution. Exact reweighting keeps the result bit-identical to an
	// unpruned campaign, but the result cache still keys on the pruning
	// masks so an analysis change can never replay stale entries.
	PruneBits bool `json:"prune_bits,omitempty"`
	// Stratify enables stratified live-bit importance sampling under the
	// default plan (bitlive.DefaultPlan): low-influence strata are thinned
	// deterministically and every executed trial carries its inverse
	// inclusion probability, so the result's weighted fields are unbiased
	// population estimates at a fraction of the executed trials. The
	// result cache keys on the stratification hash, so a classifier or
	// plan change can never replay stale weighted results.
	Stratify bool `json:"stratify,omitempty"`
	// StratifyAdaptive enables two-phase adaptive (Neyman-allocation)
	// stratified sampling: every shard first runs its slice of the pilot
	// prefix of the slot budget (static shape: live strata at rate 1,
	// provably-masked slots at the floor), the merged pilot outcomes
	// derive a Neyman plan, and the remaining slots are thinned under
	// it. Pilot trials fold into the weighted estimate at the pilot
	// plan's 1/q, so executed trials never exceed n. Mutually exclusive with Stratify — an
	// adaptive campaign derives its own plan. The result cache keys on
	// the adaptive configuration hash, so a classifier or default change
	// can never replay stale weighted results.
	StratifyAdaptive bool `json:"stratify_adaptive,omitempty"`
}

// RequestError is a submission rejection attributable to one field —
// the 400-response payload.
type RequestError struct {
	// Field is the offending JSON field ("" for whole-body problems).
	Field string `json:"field,omitempty"`
	// Msg says what is wrong with it.
	Msg string `json:"msg"`
}

// Error implements error.
func (e *RequestError) Error() string {
	if e.Field == "" {
		return "server: bad request: " + e.Msg
	}
	return fmt.Sprintf("server: bad request: field %q: %s", e.Field, e.Msg)
}

func reqErr(field, format string, args ...any) *RequestError {
	return &RequestError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// DecodeSubmit strictly decodes one submission from r: unknown fields,
// trailing data and bodies over maxBytes are rejected. It never panics
// on malformed input (fuzzed).
func DecodeSubmit(r io.Reader, maxBytes int64) (*SubmitRequest, error) {
	if maxBytes <= 0 {
		maxBytes = 8 << 20
	}
	// Read one byte past the cap to distinguish "exactly at" from "over".
	data, err := io.ReadAll(io.LimitReader(r, maxBytes+1))
	if err != nil {
		return nil, reqErr("", "reading body: %v", err)
	}
	if int64(len(data)) > maxBytes {
		return nil, reqErr("", "body exceeds %d bytes", maxBytes)
	}
	dec := json.NewDecoder(bytesReader(data))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		return nil, reqErr("", "invalid JSON: %v", err)
	}
	if dec.More() {
		return nil, reqErr("", "trailing data after JSON object")
	}
	return &req, nil
}

// bytesReader avoids importing bytes just for NewReader at the call
// site above while keeping DecodeSubmit testable with short writes.
func bytesReader(b []byte) io.Reader {
	return &byteSliceReader{b: b}
}

type byteSliceReader struct{ b []byte }

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// Validate checks the request against the server's limits, returning a
// field-attributed *RequestError on the first violation. It parses the
// embedded IR (or resolves the benchmark name) so malformed programs
// are rejected at admission, not after queueing.
func (req *SubmitRequest) Validate(lim Limits) error {
	lim = lim.withDefaults()
	switch {
	case req.Program == "" && req.IR == "":
		return reqErr("program", "one of program or ir is required")
	case req.Program != "" && req.IR != "":
		return reqErr("program", "program and ir are mutually exclusive")
	}
	if req.Program != "" {
		if _, err := progs.ByName(req.Program); err != nil {
			return reqErr("program", "%v", err)
		}
	}
	if req.IR != "" {
		if len(req.IR) > lim.MaxIRBytes {
			return reqErr("ir", "IR text exceeds %d bytes", lim.MaxIRBytes)
		}
		if _, err := ir.Parse(req.IR); err != nil {
			return reqErr("ir", "parse: %v", err)
		}
	}
	if req.N < 1 {
		return reqErr("n", "must be ≥ 1")
	}
	if req.N > lim.MaxTrials {
		return reqErr("n", "exceeds the server's trial budget (%d)", lim.MaxTrials)
	}
	if req.Shards < 0 || req.Shards > lim.MaxShards {
		return reqErr("shards", "must be in [0, %d]", lim.MaxShards)
	}
	if req.Workers < 0 || req.Workers > lim.MaxWorkers {
		return reqErr("workers", "must be in [0, %d]", lim.MaxWorkers)
	}
	if _, err := interp.ParseEngine(req.Engine); err != nil {
		return reqErr("engine", "%v", err)
	}
	if req.MaxRetries < 0 || req.MaxRetries > 16 {
		return reqErr("max_retries", "must be in [0, 16]")
	}
	if req.TrialTimeoutMS < 0 {
		return reqErr("trial_timeout_ms", "must be ≥ 0")
	}
	if req.MaxWallMS < 0 {
		return reqErr("max_wall_ms", "must be ≥ 0")
	}
	if req.MaxWallMS > lim.MaxWall.Milliseconds() {
		return reqErr("max_wall_ms", "exceeds the server's wall-clock budget (%v)", lim.MaxWall)
	}
	if req.Stratify && req.StratifyAdaptive {
		return reqErr("stratify_adaptive", "stratify and stratify_adaptive are mutually exclusive: an adaptive campaign derives its own plan")
	}
	return nil
}

// BuildModule constructs the module under test — fresh each call, so
// concurrent shard workers never share mutable IR.
func (req *SubmitRequest) BuildModule() (*ir.Module, error) {
	if req.Program != "" {
		p, err := progs.ByName(req.Program)
		if err != nil {
			return nil, err
		}
		return p.Build(), nil
	}
	return ir.Parse(req.IR)
}

// ModuleName returns the human-readable name of the program under test.
func (req *SubmitRequest) ModuleName() string {
	if req.Program != "" {
		return req.Program
	}
	return "ir"
}

// WallBudget resolves the job's effective wall-clock budget under lim.
func (req *SubmitRequest) WallBudget(lim Limits) time.Duration {
	lim = lim.withDefaults()
	if req.MaxWallMS <= 0 {
		return lim.MaxWall
	}
	d := time.Duration(req.MaxWallMS) * time.Millisecond
	if d > lim.MaxWall {
		return lim.MaxWall
	}
	return d
}

// faultOptions maps the request onto fault.Options. The caller supplies
// process-local concerns (telemetry, progress callback, trial hook).
func (req *SubmitRequest) faultOptions() fault.Options {
	engine, _ := interp.ParseEngine(req.Engine) // validated at admission
	opts := fault.Options{
		Seed:             req.Seed,
		Workers:          req.Workers,
		MaxRetries:       req.MaxRetries,
		TrialTimeout:     time.Duration(req.TrialTimeoutMS) * time.Millisecond,
		SnapshotInterval: req.SnapshotInterval,
		Engine:           engine,
		PruneBits:        req.PruneBits,
	}
	if req.Stratify {
		plan := bitlive.DefaultPlan()
		opts.Stratify = &plan
	}
	if req.StratifyAdaptive {
		opts.Adaptive = &fault.AdaptiveConfig{}
	}
	return opts
}

// SubmitResponse acknowledges an accepted job.
type SubmitResponse struct {
	// ID is the job's durable identifier.
	ID string `json:"id"`
	// State is the job's state at admission (queued).
	State string `json:"state"`
}

// ShardStatus is the per-shard view in a job status: where each slice
// of the trial range stands, including its retry history — the
// observable half of the crash-tolerance contract.
type ShardStatus struct {
	// Shard is the 0-based shard index.
	Shard int `json:"shard"`
	// Trials is the number of trials the shard owns.
	Trials int `json:"trials"`
	// State is pending, running, done, failed or cancelled.
	State string `json:"state"`
	// Attempts counts worker runs, including crash retries.
	Attempts int `json:"attempts,omitempty"`
	// Done is the number of trials the shard has classified so far.
	Done int `json:"done"`
	// Error describes the final failure of a failed shard.
	Error string `json:"error,omitempty"`
}

// JobStatus is the job-level view: lifecycle state, aggregate progress
// and per-shard detail.
type JobStatus struct {
	// ID is the job identifier.
	ID string `json:"id"`
	// State is queued, running, done, partial, failed or cancelled.
	State string `json:"state"`
	// Program names the program under test.
	Program string `json:"program"`
	// N is the requested trial count.
	N int `json:"n"`
	// Seed is the campaign seed.
	Seed uint64 `json:"seed"`
	// Done is the number of trials classified across all shards.
	Done int `json:"done"`
	// Counts tallies classified trials by outcome name.
	Counts map[string]int `json:"counts,omitempty"`
	// Shards details each shard.
	Shards []ShardStatus `json:"shards,omitempty"`
	// Error describes a failed (or degraded) job.
	Error string `json:"error,omitempty"`
}

// TrialRecord is one classified trial on the wire, mirroring the
// checkpoint log's record field for field — the currency of the
// bit-identity acceptance tests.
type TrialRecord struct {
	Func     string `json:"fn"`
	Instr    int    `json:"instr"`
	Instance uint64 `json:"instance"`
	Bit      int    `json:"bit"`
	Outcome  string `json:"outcome"`
	Latency  uint64 `json:"latency,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Err      string `json:"err,omitempty"`
}

// Result is a job's final (or partial) campaign result.
type Result struct {
	// ID is the job identifier.
	ID string `json:"id"`
	// State is the job's terminal state (done, partial, cancelled).
	State string `json:"state"`
	// N is the requested trial count.
	N int `json:"n"`
	// Missing is how many requested trials have no record — nonzero
	// only for degraded or cancelled jobs.
	Missing int `json:"missing,omitempty"`
	// Counts tallies trials by outcome name.
	Counts map[string]int `json:"counts"`
	// SDCProb is the measured SDC probability over classified trials.
	SDCProb float64 `json:"sdc_prob"`
	// ErrorBar95 is the Wilson 95% half-interval on SDCProb.
	ErrorBar95 float64 `json:"error_bar_95"`
	// Trials lists every recorded trial in sampling order.
	Trials []TrialRecord `json:"trials"`
	// Stratified marks a stratified job's result: Trials then holds only
	// the executed (thinned) subset of the N drawn slots, and the
	// weighted fields below carry the Horvitz-Thompson population
	// estimates. SDCProb/ErrorBar95 still describe the executed subset.
	Stratified bool `json:"stratified,omitempty"`
	// ExecutedN is the number of slots that survived thinning.
	ExecutedN int `json:"executed_n,omitempty"`
	// WeightedSDC is the inverse-probability-weighted SDC estimate over
	// all N slots; WeightedErrorBar95 is its 95% Wilson half-width at the
	// variance-matched effective sample size EffectiveN.
	WeightedSDC        float64 `json:"weighted_sdc,omitempty"`
	WeightedErrorBar95 float64 `json:"weighted_error_bar_95,omitempty"`
	EffectiveN         float64 `json:"effective_n,omitempty"`
	// Adaptive marks an adaptive (Neyman) job's result: the plan behind
	// the weighted fields was derived from a static-shape pilot prefix
	// rather than configured statically. PilotExecuted counts the pilot
	// trials, which fold into the weighted estimate at the pilot plan's
	// 1/q.
	Adaptive      bool `json:"adaptive,omitempty"`
	PilotExecuted int  `json:"pilot_executed,omitempty"`
	// FailedShards carries the per-shard error status of a degraded job.
	FailedShards []ShardStatus `json:"failed_shards,omitempty"`
	// Cached reports that the result was served from the server's
	// whole-job result cache without running any shards.
	Cached bool `json:"cached,omitempty"`
}

// Event is one line of a job's JSONL event stream (and of a shard
// worker process's stdout protocol).
type Event struct {
	// Type is "state", "progress" or "done".
	Type string `json:"type"`
	// State is the job state at emission.
	State string `json:"state,omitempty"`
	// Done/Total are the aggregate trial progress.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Counts tallies outcomes by name so clients can render live rates.
	Counts map[string]int `json:"counts,omitempty"`
	// ElapsedMS is wall time since the job (or shard) started.
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
	// Error describes a failed or degraded terminal state.
	Error string `json:"error,omitempty"`
}
