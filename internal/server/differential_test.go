// Differential acceptance suite: for every benchmark kernel, a
// campaign run through the server — sharded, merged, reconstructed —
// must be bit-identical, trial for trial, to a direct fault.Injector
// run with the same seed. This is the transparency contract of the
// whole service layer: HTTP, queueing, sharding, checkpointing and
// merging may add operational machinery but must never change a single
// measured outcome.

package server

import (
	"testing"

	"trident/internal/progs"
)

func TestServerDifferentialAllKernels(t *testing.T) {
	if testing.Short() {
		t.Skip("11-kernel differential sweep is slow in -short mode")
	}
	s := newSupervisedServer(t, func(c *Config) {
		c.MaxConcurrentJobs = 4
	})
	s.Start()

	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			req := &SubmitRequest{Program: p.Name, N: 30, Seed: 2026, Shards: 3}
			j, err := s.Submit(req)
			if err != nil {
				t.Fatal(err)
			}
			if st := waitTerminal(t, j); st != JobDone {
				t.Fatalf("state = %s (%s), want done", st, j.status().Error)
			}
			res := j.Result()
			if res == nil || res.Missing != 0 {
				t.Fatalf("result = %+v, want complete", res)
			}
			diffTrials(t, res.Trials, directTrials(t, req), p.Name)
			// The aggregate counts must agree with the trial list.
			total := 0
			for _, c := range res.Counts {
				total += c
			}
			if total != req.N {
				t.Errorf("counts sum to %d, want %d", total, req.N)
			}
		})
	}
}

// TestServerDifferentialDecodedEngine repeats the differential for the
// pre-decoded engine on one kernel, pinning engine selection through
// the wire format.
func TestServerDifferentialDecodedEngine(t *testing.T) {
	s := newSupervisedServer(t, nil)
	s.Start()
	req := &SubmitRequest{Program: "nw", N: 40, Seed: 11, Shards: 2, Engine: "decoded"}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st != JobDone {
		t.Fatalf("state = %s (%s), want done", st, j.status().Error)
	}
	diffTrials(t, j.Result().Trials, directTrials(t, req), "nw/decoded")
}

// TestServerDifferentialPrunedJob pins prune_bits through the wire
// format and the exact-reweighting contract across the service layer: a
// pruned, sharded job must be bit-identical to an UNPRUNED direct run —
// same trials, same outcomes, same tallies — on a kernel where pruning
// actually skips a large share of the trials.
func TestServerDifferentialPrunedJob(t *testing.T) {
	s := newSupervisedServer(t, nil)
	s.Start()
	req := &SubmitRequest{Program: "rgb2gray", N: 40, Seed: 11, Shards: 2, PruneBits: true}
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st != JobDone {
		t.Fatalf("state = %s (%s), want done", st, j.status().Error)
	}
	unpruned := *req
	unpruned.PruneBits = false
	diffTrials(t, j.Result().Trials, directTrials(t, &unpruned), "rgb2gray/pruned")
}
