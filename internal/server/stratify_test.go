package server

import (
	"context"
	"testing"

	"trident/internal/bitlive"
	"trident/internal/fault"
	"trident/internal/progs"
)

// localStratified runs the reference stratified campaign for req in
// process — the ground truth a server job must reproduce exactly.
func localStratified(t *testing.T, req *SubmitRequest) *fault.StratifiedResult {
	t.Helper()
	p, err := progs.ByName(req.Program)
	if err != nil {
		t.Fatal(err)
	}
	plan := bitlive.DefaultPlan()
	inj, err := fault.New(p.Build(), fault.Options{Seed: req.Seed, Stratify: &plan})
	if err != nil {
		t.Fatal(err)
	}
	sr, err := inj.CampaignStratified(context.Background(), req.N)
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestStratifiedJobMatchesLocal: a sharded stratified server job
// reproduces an in-process stratified campaign bit for bit — same
// executed subset in the same sampling order, same weighted estimates —
// so sharding and checkpoint stitching are transparent to the
// Horvitz-Thompson reweighting.
func TestStratifiedJobMatchesLocal(t *testing.T) {
	s := newSupervisedServer(t, nil)
	s.Start()

	req := &SubmitRequest{Program: "rgb2gray", N: 120, Seed: 9, Shards: 3, Stratify: true}
	res := submitAndWait(t, s, req, JobDone).Result()
	if res == nil || !res.Stratified {
		t.Fatalf("result = %+v, want a stratified result", res)
	}
	want := localStratified(t, req)
	if res.ExecutedN != want.ExecutedN() || len(res.Trials) != want.ExecutedN() {
		t.Fatalf("executed %d trials (%d records), local ran %d",
			res.ExecutedN, len(res.Trials), want.ExecutedN())
	}
	if res.Missing != 0 {
		t.Fatalf("missing = %d, want 0", res.Missing)
	}
	for i, tr := range want.Trials {
		got := res.Trials[i]
		if got.Func != tr.Instr.Block.Fn.Name || got.Instr != tr.Instr.ID ||
			got.Instance != tr.Instance || got.Bit != tr.Bit ||
			got.Outcome != tr.Outcome.String() {
			t.Fatalf("trial %d: server %+v, local %+v", i, got, tr)
		}
	}
	if res.WeightedSDC != want.WeightedSDC() {
		t.Errorf("weighted SDC %v, local %v", res.WeightedSDC, want.WeightedSDC())
	}
	if res.WeightedErrorBar95 != want.WeightedErrorBar95() {
		t.Errorf("weighted error bar %v, local %v", res.WeightedErrorBar95, want.WeightedErrorBar95())
	}
	if res.EffectiveN != want.EffectiveN() {
		t.Errorf("effective n %v, local %v", res.EffectiveN, want.EffectiveN())
	}
}

// TestResultCacheStratifyKeySeparation: stratified and plain submissions
// of the same campaign never share a result-cache entry (a stratified
// result holds only the thinned subset), and each resubmission hits its
// own entry with the weighted fields intact.
func TestResultCacheStratifyKeySeparation(t *testing.T) {
	cacheDir := t.TempDir()
	s := newSupervisedServer(t, func(c *Config) { c.ResultCacheDir = cacheDir })
	s.Start()

	plain := &SubmitRequest{Program: "nibblepack", N: 60, Seed: 4, Shards: 2}
	plainRes := submitAndWait(t, s, plain, JobDone).Result()
	if plainRes.Stratified {
		t.Fatal("plain job produced a stratified result")
	}

	strat := *plain
	strat.Stratify = true
	j2 := submitAndWait(t, s, &strat, JobDone)
	res2 := j2.Result()
	if res2.Cached {
		t.Fatal("stratified submission served from the plain cache entry")
	}
	if !res2.Stratified || len(res2.Trials) >= len(plainRes.Trials) {
		t.Fatalf("stratified result: stratified=%v trials=%d (plain ran %d), want a strict thinned subset",
			res2.Stratified, len(res2.Trials), len(plainRes.Trials))
	}
	if files := cacheEntryFiles(t, cacheDir); len(files) != 2 {
		t.Fatalf("cache holds %d entries, want 2 (one per sampling mode)", len(files))
	}

	j3 := submitAndWait(t, s, &strat, JobDone)
	res3 := j3.Result()
	if !res3.Cached {
		t.Fatal("stratified resubmission missed its cache entry")
	}
	if got, want := stripIdentity(res3), stripIdentity(res2); string(got) != string(want) {
		t.Errorf("cached stratified result diverges:\n  got  %s\n  want %s", got, want)
	}
	if !submitAndWait(t, s, plain, JobDone).Result().Cached {
		t.Error("plain resubmission missed its cache entry")
	}
}
