// This file is the server's job registry and FIFO admission queue. The
// registry owns every job the server knows about (queued, running and
// terminal alike — terminal jobs keep serving status and results); the
// pending list orders the ones awaiting a scheduler slot.

package server

import "sync"

type queue struct {
	mu      sync.Mutex
	jobs    map[string]*Job
	pending []string
	// wake nudges the scheduler when work arrives; buffered so an add
	// with no scheduler parked on it never blocks.
	wake chan struct{}
	max  int // pending cap; <= 0 means unbounded
}

func newQueue(max int) *queue {
	return &queue{jobs: make(map[string]*Job), wake: make(chan struct{}, 1), max: max}
}

// add registers the job and, when enqueue is set, appends it to the
// pending list. It reports false when the pending list is full — the
// job is then not registered at all.
func (q *queue) add(j *Job, enqueue bool) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if enqueue && q.max > 0 && len(q.pending) >= q.max {
		return false
	}
	q.jobs[j.ID] = j
	if enqueue {
		q.pending = append(q.pending, j.ID)
		select {
		case q.wake <- struct{}{}:
		default:
		}
	}
	return true
}

// pop dequeues the oldest pending job, or nil when none is pending.
// Jobs cancelled while queued are skipped (their terminal state was
// already set by the cancel path).
func (q *queue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.pending) > 0 {
		id := q.pending[0]
		q.pending = q.pending[1:]
		j := q.jobs[id]
		if j == nil || j.State().Terminal() {
			continue
		}
		return j
	}
	return nil
}

// get looks a job up by ID.
func (q *queue) get(id string) *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.jobs[id]
}

// list returns every registered job, unordered.
func (q *queue) list() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		out = append(out, j)
	}
	return out
}

// depth returns the number of pending jobs.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}
