// This file holds the server's job model and its spool-directory
// persistence. A job is durable from the moment it is accepted: the
// immutable submission lives in job.json, the mutable lifecycle state
// in state.json (atomically rewritten on every transition), and the
// shard checkpoints and final result alongside them. A server restarted
// over the same spool reconstructs every job — terminal jobs keep
// serving their results, interrupted ones go back on the queue and
// resume from their shard checkpoints.

package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"trident/internal/fault"
)

// JobState is a job's lifecycle state.
type JobState string

// The job lifecycle: queued → running → one of the four terminal
// states. A drain moves running back to queued (persisted, so a
// restarted server resumes the job); partial marks a job degraded by
// shard failures, a wall-clock budget, or resumable interruption debris
// — its result is still served, with the gaps accounted for.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobPartial   JobState = "partial"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case JobDone, JobPartial, JobFailed, JobCancelled:
		return true
	}
	return false
}

// shardInfo is the supervisor's mutable view of one shard.
type shardInfo struct {
	state    string // pending, running, done, failed, cancelled
	attempts int
	done     int
	counts   [int(fault.Errored) + 1]int
	err      string
}

// Job is one campaign submission and everything the server knows about
// it. All mutable fields are guarded by mu; watchers observe changes
// through the broadcast channel, which is closed and replaced on every
// update (a broadcast condition variable that composes with select).
type Job struct {
	// ID is the durable job identifier; dir its spool directory.
	ID  string
	dir string
	// req is the validated, default-resolved submission (immutable).
	req *SubmitRequest

	mu        sync.Mutex
	state     JobState
	errMsg    string
	shards    []shardInfo
	result    *Result
	cancel    func() // cancels the running job's context (nil until running)
	cancelled bool   // client asked for cancellation
	broadcast chan struct{}
	started   time.Time
}

// shardBase snapshots a shard's cumulative progress at a wave boundary,
// so the next wave's progress callbacks accumulate onto it instead of
// resetting the status counters.
type shardBase struct {
	done   int
	counts [int(fault.Errored) + 1]int
}

// shardBases snapshots every shard's progress.
func (j *Job) shardBases() []shardBase {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]shardBase, len(j.shards))
	for i := range j.shards {
		out[i] = shardBase{done: j.shards[i].done, counts: j.shards[i].counts}
	}
	return out
}

// jobMeta is job.json: the immutable half of a job's persistence.
type jobMeta struct {
	ID  string         `json:"id"`
	Req *SubmitRequest `json:"req"`
}

// jobStateFile is state.json: the mutable half, atomically rewritten.
type jobStateFile struct {
	State JobState `json:"state"`
	Error string   `json:"error,omitempty"`
}

func newJob(id, dir string, req *SubmitRequest) *Job {
	j := &Job{
		ID:        id,
		dir:       dir,
		req:       req,
		state:     JobQueued,
		shards:    make([]shardInfo, req.Shards),
		broadcast: make(chan struct{}),
	}
	for i := range j.shards {
		j.shards[i].state = "pending"
	}
	return j
}

// save writes both halves of the job's persistence; used at admission.
func (j *Job) save() error {
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return fmt.Errorf("server: job dir: %w", err)
	}
	meta := jobMeta{ID: j.ID, Req: j.req}
	if err := writeJSONFile(filepath.Join(j.dir, "job.json"), meta); err != nil {
		return err
	}
	return j.persistState()
}

// persistState atomically rewrites state.json with the current state.
// Callers must hold mu (or own the job exclusively).
func (j *Job) persistState() error {
	sf := jobStateFile{State: j.state, Error: j.errMsg}
	return writeJSONFile(filepath.Join(j.dir, "state.json"), sf)
}

// writeJSONFile writes v as JSON via tmp+rename so a crash mid-write
// never leaves a torn file where a whole one used to be.
func writeJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("server: encode %s: %w", filepath.Base(path), err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("server: write %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: write %s: %w", filepath.Base(path), err)
	}
	return nil
}

func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("server: decode %s: %w", filepath.Base(path), err)
	}
	return nil
}

// loadJob reconstructs a job from its spool directory. Jobs found
// queued or running were interrupted — they re-enter the queue and
// resume from their shard checkpoints; terminal jobs keep serving their
// persisted state and result.
func loadJob(dir string) (*Job, bool, error) {
	var meta jobMeta
	if err := readJSONFile(filepath.Join(dir, "job.json"), &meta); err != nil {
		return nil, false, err
	}
	if meta.ID == "" || meta.Req == nil || meta.Req.Shards < 1 || meta.Req.N < 1 {
		return nil, false, fmt.Errorf("server: %s: malformed job.json", dir)
	}
	j := newJob(meta.ID, dir, meta.Req)
	var sf jobStateFile
	if err := readJSONFile(filepath.Join(dir, "state.json"), &sf); err != nil {
		// job.json exists but state.json is missing or torn: the server
		// crashed between the two writes at admission. The submission is
		// intact, so treat the job as queued.
		sf = jobStateFile{State: JobQueued}
	}
	j.state = sf.State
	j.errMsg = sf.Error
	resume := false
	switch sf.State {
	case JobQueued, JobRunning:
		j.state = JobQueued
		j.errMsg = ""
		resume = true
	default:
		var res Result
		if err := readJSONFile(filepath.Join(dir, "result.json"), &res); err == nil {
			j.result = &res
		}
	}
	return j, resume, nil
}

// notify wakes every watcher. Callers must hold mu.
func (j *Job) notify() {
	close(j.broadcast)
	j.broadcast = make(chan struct{})
}

// watch returns a channel closed at the next job update.
func (j *Job) watch() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.broadcast
}

// setState transitions the job, persists the transition, and notifies
// watchers. State transitions are rare (per-trial progress does not
// pass through here), so the fsync-ish cost of the atomic rewrite is
// off the hot path.
func (j *Job) setState(s JobState, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	j.errMsg = errMsg
	_ = j.persistState()
	j.notify()
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// updateShard mutates one shard's info under the job lock and notifies
// watchers.
func (j *Job) updateShard(shard int, f func(*shardInfo)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	f(&j.shards[shard])
	j.notify()
}

// setResult installs the job's final result (before the terminal
// setState, so watchers woken by the transition see it).
func (j *Job) setResult(res *Result) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.result = res
	_ = writeJSONFile(filepath.Join(j.dir, "result.json"), res)
}

// Result returns the job's result, or nil if none yet.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// requestCancel marks the job client-cancelled and cancels its running
// context if any. It reports whether the job was still queued (the
// caller then finalizes it directly — there is no runner to unwind).
func (j *Job) requestCancel() (wasQueued bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.cancelled = true
	if j.cancel != nil {
		j.cancel()
		return false
	}
	return j.state == JobQueued
}

// allShardsDone reports whether every shard completed successfully.
func (j *Job) allShardsDone() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range j.shards {
		if j.shards[i].state != "done" {
			return false
		}
	}
	return true
}

func (j *Job) clientCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}

// status snapshots the job for the wire.
func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:      j.ID,
		State:   string(j.state),
		Program: j.req.ModuleName(),
		N:       j.req.N,
		Seed:    j.req.Seed,
		Error:   j.errMsg,
	}
	counts := make(map[string]int)
	for i := range j.shards {
		si := &j.shards[i]
		lo, hi := fault.ShardRange(j.req.N, i, j.req.Shards)
		st.Done += si.done
		ss := ShardStatus{
			Shard:    i,
			Trials:   hi - lo,
			State:    si.state,
			Attempts: si.attempts,
			Done:     si.done,
			Error:    si.err,
		}
		st.Shards = append(st.Shards, ss)
		for o := fault.Outcome(1); o <= fault.Errored; o++ {
			if c := si.counts[o]; c > 0 {
				counts[o.String()] += c
			}
		}
	}
	if len(counts) > 0 {
		st.Counts = counts
	}
	return st
}

// progressEvent snapshots the job as a stream event.
func (j *Job) progressEvent() Event {
	st := j.status()
	typ := "progress"
	if JobState(st.State).Terminal() {
		typ = "done"
	}
	ev := Event{
		Type:   typ,
		State:  st.State,
		Done:   st.Done,
		Total:  st.N,
		Counts: st.Counts,
		Error:  st.Error,
	}
	j.mu.Lock()
	if !j.started.IsZero() {
		ev.ElapsedMS = time.Since(j.started).Milliseconds()
	}
	j.mu.Unlock()
	return ev
}
