package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestMain doubles as the shard-worker process for exec-mode tests: the
// execRunner re-executes this test binary with -worker-dir, and we
// divert into RunWorker instead of the test suite (the helper-process
// pattern).
func TestMain(m *testing.M) {
	dir, shard, phase, chaos := "", -1, "", time.Duration(0)
	args := os.Args[1:]
	for i := 0; i < len(args)-1; i++ {
		switch args[i] {
		case "-worker-dir":
			dir = args[i+1]
		case "-worker-shard":
			shard, _ = strconv.Atoi(args[i+1])
		case "-worker-phase":
			phase = args[i+1]
		case "-chaos-trial-delay":
			chaos, _ = time.ParseDuration(args[i+1])
		}
	}
	if dir != "" {
		os.Exit(RunWorker(dir, shard, phase, chaos))
	}
	os.Exit(m.Run())
}

// httpServer wraps a started Server in an httptest listener.
func httpServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJob(t *testing.T, url string, req *SubmitRequest) SubmitResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var re RequestError
		_ = json.NewDecoder(resp.Body).Decode(&re)
		t.Fatalf("POST /jobs = %d (%v)", resp.StatusCode, &re)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.ID == "" || sr.State != string(JobQueued) {
		t.Fatalf("submit response = %+v", sr)
	}
	return sr
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// streamEvents consumes the job's JSONL event stream until the done
// event, returning every event seen.
func streamEvents(t *testing.T, url, id string) []Event {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
		if ev.Type == "done" {
			return evs
		}
	}
	t.Fatalf("event stream ended without done event (%d events)", len(evs))
	return nil
}

// TestSubmitRunResult is the front-door happy path: submit over HTTP,
// watch the event stream to completion, fetch the result, and require
// it bit-identical to a direct Injector run.
func TestSubmitRunResult(t *testing.T) {
	s := newSupervisedServer(t, nil)
	s.Start()
	ts := httpServer(t, s)

	req := &SubmitRequest{Program: "pathfinder", N: 60, Seed: 42, Shards: 3}
	sr := postJob(t, ts.URL, req)

	evs := streamEvents(t, ts.URL, sr.ID)
	last := evs[len(evs)-1]
	if last.State != string(JobDone) {
		t.Fatalf("final event state = %q (%s), want done", last.State, last.Error)
	}
	if last.Done != req.N || last.Total != req.N {
		t.Fatalf("final progress %d/%d, want %d/%d", last.Done, last.Total, req.N, req.N)
	}

	var res Result
	if code := getJSON(t, ts.URL+"/jobs/"+sr.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("GET result = %d", code)
	}
	if res.State != string(JobDone) || res.Missing != 0 {
		t.Fatalf("result state=%s missing=%d", res.State, res.Missing)
	}
	diffTrials(t, res.Trials, directTrials(t, req), "server campaign")

	// Status and list surfaces agree.
	var st JobStatus
	if code := getJSON(t, ts.URL+"/jobs/"+sr.ID, &st); code != http.StatusOK || st.State != string(JobDone) {
		t.Fatalf("GET status = %d, state %s", code, st.State)
	}
	var list []JobStatus
	if code := getJSON(t, ts.URL+"/jobs", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("GET /jobs = %d, %d jobs", code, len(list))
	}
}

// TestDrainRequeuesAndRestartResumes is the graceful-drain contract:
// SIGTERM-equivalent drain mid-campaign re-queues the job on disk, a
// new server over the same spool resumes it from its shard checkpoints,
// and the final result is still bit-identical to a clean run.
func TestDrainRequeuesAndRestartResumes(t *testing.T) {
	spool := t.TempDir()
	s1, err := New(Config{
		Spool:             spool,
		RetryBase:         time.Millisecond,
		ChaosTrialDelay:   5 * time.Millisecond, // slow trials so the drain lands mid-campaign
		MaxConcurrentJobs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httpServer(t, s1)

	req := &SubmitRequest{Program: "pathfinder", N: 240, Seed: 1234, Shards: 3}
	sr := postJob(t, ts1.URL, req)
	j1 := s1.q.get(sr.ID)

	// Wait until the campaign has made real progress.
	deadline := time.After(30 * time.Second)
	for j1.status().Done < 10 {
		select {
		case <-j1.watch():
		case <-deadline:
			t.Fatalf("no progress before drain (done=%d)", j1.status().Done)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !s1.Draining() {
		t.Fatal("server not draining after Drain")
	}
	// Post-drain: admission refuses with 503 + Retry-After.
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts1.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("submit while draining = %d (Retry-After %q)", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if st := j1.State(); st != JobQueued {
		t.Fatalf("job state after drain = %s, want queued", st)
	}

	// Restart: a fresh server over the same spool, without the chaos
	// delay, resumes the job and completes it.
	s2 := newSupervisedServer(t, func(c *Config) { c.Spool = spool })
	j2 := s2.q.get(sr.ID)
	if j2 == nil {
		t.Fatal("restarted server lost the job")
	}
	if st := j2.State(); st != JobQueued {
		t.Fatalf("recovered job state = %s, want queued", st)
	}
	s2.Start()
	if st := waitTerminal(t, j2); st != JobDone {
		t.Fatalf("resumed job state = %s (%s), want done", st, j2.status().Error)
	}
	res := j2.Result()
	if res == nil || res.Missing != 0 {
		t.Fatalf("resumed result = %+v, want complete", res)
	}
	diffTrials(t, res.Trials, directTrials(t, req), "drained+resumed campaign")
}

// TestCancelJob: DELETE cancels a running job; the partial result built
// from its checkpoints is served with the gaps accounted for.
func TestCancelJob(t *testing.T) {
	s := newSupervisedServer(t, func(c *Config) {
		c.ChaosTrialDelay = 5 * time.Millisecond
	})
	s.Start()
	ts := httpServer(t, s)

	req := &SubmitRequest{Program: "pathfinder", N: 400, Seed: 5, Shards: 2}
	sr := postJob(t, ts.URL, req)
	j := s.q.get(sr.ID)
	deadline := time.After(30 * time.Second)
	for j.status().Done < 5 {
		select {
		case <-j.watch():
		case <-deadline:
			t.Fatal("no progress before cancel")
		}
	}

	httpReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+sr.ID, nil)
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	if st := waitTerminal(t, j); st != JobCancelled {
		t.Fatalf("state = %s, want cancelled", st)
	}
	res := j.Result()
	if res == nil {
		t.Fatal("cancelled job has no partial result")
	}
	if res.Missing == 0 {
		t.Error("cancelled mid-run but nothing missing")
	}
	if got := len(res.Trials) + res.Missing; got != req.N {
		t.Errorf("trials(%d) + missing(%d) != n(%d)", len(res.Trials), res.Missing, req.N)
	}
}

// TestCancelQueuedJob: cancelling a job that never got a slot finalizes
// it without running anything.
func TestCancelQueuedJob(t *testing.T) {
	s := newSupervisedServer(t, nil)
	// Scheduler NOT started: the job stays queued.
	ts := httpServer(t, s)
	sr := postJob(t, ts.URL, &SubmitRequest{Program: "nw", N: 10, Seed: 1, Shards: 2})
	httpReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+sr.ID, nil)
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != string(JobCancelled) {
		t.Fatalf("state = %s, want cancelled", st.State)
	}
	s.Start() // scheduler must skip the cancelled job without wedging
}

func TestHTTPErrors(t *testing.T) {
	s := newSupervisedServer(t, nil)
	s.Start()
	ts := httpServer(t, s)

	if code := getJSON(t, ts.URL+"/jobs/nonesuch", nil); code != http.StatusNotFound {
		t.Errorf("GET unknown job = %d", code)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"n":5}`))
	if err != nil {
		t.Fatal(err)
	}
	var re RequestError
	_ = json.NewDecoder(resp.Body).Decode(&re)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || re.Field != "program" {
		t.Errorf("bad submit = %d, field %q", resp.StatusCode, re.Field)
	}
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz = %d %v", code, health)
	}
}

// TestQueueFullRejects: submissions past the queue cap get 429 and do
// not leave debris in the spool.
func TestQueueFullRejects(t *testing.T) {
	s := newSupervisedServer(t, func(c *Config) { c.MaxQueueDepth = 1 })
	// Scheduler not started, so the first job occupies the queue.
	ts := httpServer(t, s)
	postJob(t, ts.URL, &SubmitRequest{Program: "nw", N: 10, Shards: 2})
	body, _ := json.Marshal(&SubmitRequest{Program: "nw", N: 10, Shards: 2})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over cap = %d, want 429", resp.StatusCode)
	}
	entries, err := os.ReadDir(fmt.Sprintf("%s/jobs", s.cfg.Spool))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("spool has %d job dirs after rejection, want 1", len(entries))
	}
}

// TestExecWorkerDifferential runs a campaign with every shard in its
// own child process (the test binary re-executed via TestMain) and
// requires the merged result bit-identical to a direct run.
func TestExecWorkerDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("exec workers are slow in -short mode")
	}
	s := newSupervisedServer(t, func(c *Config) {
		c.WorkerMode = "exec"
		c.ExecPath = os.Args[0]
	})
	s.Start()
	ts := httpServer(t, s)

	req := &SubmitRequest{Program: "pathfinder", N: 60, Seed: 77, Shards: 2}
	sr := postJob(t, ts.URL, req)
	j := s.q.get(sr.ID)
	if st := waitTerminal(t, j); st != JobDone {
		t.Fatalf("state = %s (%s), want done", st, j.status().Error)
	}
	res := j.Result()
	if res == nil || res.Missing != 0 {
		t.Fatalf("result = %+v, want complete", res)
	}
	diffTrials(t, res.Trials, directTrials(t, req), "exec-worker campaign")
}

// TestExecWorkerDrainResume: draining TERMs the shard worker processes;
// their checkpoints survive, and a restarted (inproc) server resumes to
// a result bit-identical to a clean run — the crash drill of
// scripts/servercheck.sh in miniature.
func TestExecWorkerDrainResume(t *testing.T) {
	if testing.Short() {
		t.Skip("exec workers are slow in -short mode")
	}
	spool := t.TempDir()
	s1, err := New(Config{
		Spool:           spool,
		WorkerMode:      "exec",
		ExecPath:        os.Args[0],
		ChaosTrialDelay: 5 * time.Millisecond,
		RetryBase:       time.Millisecond,
		DrainGrace:      10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	req := &SubmitRequest{Program: "pathfinder", N: 240, Seed: 99, Shards: 2}
	j1, err := s1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(60 * time.Second)
	for j1.status().Done < 10 {
		select {
		case <-j1.watch():
		case <-deadline:
			t.Fatalf("no progress before drain (done=%d)", j1.status().Done)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := j1.State(); st != JobQueued {
		t.Fatalf("state after drain = %s, want queued", st)
	}

	s2 := newSupervisedServer(t, func(c *Config) { c.Spool = spool })
	j2 := s2.q.get(j1.ID)
	s2.Start()
	if st := waitTerminal(t, j2); st != JobDone {
		t.Fatalf("resumed state = %s (%s), want done", st, j2.status().Error)
	}
	diffTrials(t, j2.Result().Trials, directTrials(t, req), "TERMed exec workers resumed")
}
