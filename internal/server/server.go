// Package server implements the campaign-as-a-service layer: an HTTP
// fault-injection server that accepts IR (or built-in benchmark)
// submissions, queues them as durable jobs, runs each campaign sharded
// across a crash-tolerant worker pool, and streams progress and results
// as JSONL.
//
// The architectural contract, pinned down by the differential tests, is
// that the service layer is *transparent*: a campaign run through the
// server — sharded, checkpointed, crash-retried, drained and resumed
// across a restart — produces per-trial results bit-identical to a
// direct fault.Injector run with the same seed. Sharding is index
// slicing over the deterministic trial list (internal/fault/shard.go),
// every shard checkpoints independently, and the merged log both yields
// the final result and re-seeds a resumed run.
//
// Durability model: each job owns a spool directory holding job.json
// (immutable submission), state.json (atomic lifecycle rewrites),
// shard-NN.jsonl checkpoints, merged.jsonl, and result.json. A server
// restarted over the same spool serves terminal jobs' results and
// re-queues interrupted jobs, which resume from their checkpoints. On
// SIGTERM the server drains: admission stops (503 + Retry-After),
// running shards are cancelled (their checkpoints already hold every
// completed trial), jobs re-queue to disk, and the process exits 143.
// DESIGN.md §5g covers the full choreography; the result cache's
// pruning-aware key is specified in DESIGN.md §5i.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trident/internal/cache"
	"trident/internal/telemetry"
)

// Config parameterizes a Server. The zero value of most fields selects
// a sensible default (see New).
type Config struct {
	// Spool is the durable job directory (required).
	Spool string
	// MaxConcurrentJobs bounds jobs running at once (default 2).
	MaxConcurrentJobs int
	// MaxQueueDepth bounds jobs waiting for a slot (default 64); past
	// it, submissions get 429.
	MaxQueueDepth int
	// DefaultShards is the shard count for jobs that don't choose one
	// (default 4).
	DefaultShards int
	// ShardRetries is how many times a crashed shard is retried from
	// its checkpoint before the job degrades (default 2).
	ShardRetries int
	// RetryBase is the base of the shard retry backoff (default 250ms).
	RetryBase time.Duration
	// WorkerMode selects how shards run: "inproc" (default) or "exec"
	// (child process per shard; requires ExecPath).
	WorkerMode string
	// ExecPath is the binary re-executed per shard in exec mode
	// (defaults to os.Executable()).
	ExecPath string
	// DrainGrace is how long a TERMed exec worker gets to flush before
	// SIGKILL (default 5s).
	DrainGrace time.Duration
	// ChaosTrialDelay slows every trial by the given duration — crash
	// drills use it to land kills mid-campaign. Zero in production.
	ChaosTrialDelay time.Duration
	// ResultCacheDir, when set, roots a content-addressed whole-job
	// result cache shared by every job (and, living on disk, by every
	// restart): a submission whose module hash, seed, trial count and
	// fault model match a previously completed clean job is answered
	// from the cache without launching a single shard. Empty disables
	// caching.
	ResultCacheDir string
	// Limits bounds what submissions may ask for.
	Limits Limits
	// Metrics and Trace receive server telemetry (both optional).
	Metrics *telemetry.Registry
	Trace   *telemetry.Trace
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrentJobs <= 0 {
		c.MaxConcurrentJobs = 2
	}
	if c.MaxQueueDepth <= 0 {
		c.MaxQueueDepth = 64
	}
	if c.DefaultShards <= 0 {
		c.DefaultShards = 4
	}
	if c.ShardRetries < 0 {
		c.ShardRetries = 0
	} else if c.ShardRetries == 0 {
		c.ShardRetries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 250 * time.Millisecond
	}
	if c.WorkerMode == "" {
		c.WorkerMode = "inproc"
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	c.Limits = c.Limits.withDefaults()
	return c
}

// Server is the campaign service: queue, scheduler, shard supervisor
// and HTTP surface.
type Server struct {
	cfg         Config
	limits      Limits
	met         *serverMetrics
	q           *queue
	runner      shardRunner
	resultCache *cache.Store

	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup
	draining  atomic.Bool
	started   atomic.Bool
}

// New builds a Server over the spool directory, recovering every job
// already on disk: terminal jobs serve their persisted results,
// interrupted jobs re-enter the queue and will resume from their shard
// checkpoints once Start runs.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Spool == "" {
		return nil, fmt.Errorf("server: Config.Spool is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Spool, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("server: spool: %w", err)
	}
	s := &Server{
		cfg:    cfg,
		limits: cfg.Limits,
		met:    newServerMetrics(cfg.Metrics),
		q:      newQueue(cfg.MaxQueueDepth),
	}
	if cfg.ResultCacheDir != "" {
		store, err := cache.Open(cfg.ResultCacheDir, cache.Options{Metrics: cfg.Metrics, Trace: cfg.Trace})
		if err != nil {
			return nil, fmt.Errorf("server: result cache: %w", err)
		}
		s.resultCache = store
	}
	switch cfg.WorkerMode {
	case "inproc":
		s.runner = &inprocRunner{chaos: cfg.ChaosTrialDelay}
	case "exec":
		path := cfg.ExecPath
		if path == "" {
			exe, err := os.Executable()
			if err != nil {
				return nil, fmt.Errorf("server: exec worker mode: %w", err)
			}
			path = exe
		}
		s.runner = &execRunner{path: path, grace: cfg.DrainGrace, chaos: cfg.ChaosTrialDelay}
	default:
		return nil, fmt.Errorf("server: unknown worker mode %q (inproc, exec)", cfg.WorkerMode)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover reloads jobs from the spool, re-queueing interrupted ones.
func (s *Server) recover() error {
	jobsDir := filepath.Join(s.cfg.Spool, "jobs")
	entries, err := os.ReadDir(jobsDir)
	if err != nil {
		return fmt.Errorf("server: spool: %w", err)
	}
	// Deterministic re-queue order: job IDs sort by admission (they
	// embed a monotonic counter only within a process, so lexical order
	// is the best cross-restart approximation).
	sort.Slice(entries, func(i, k int) bool { return entries[i].Name() < entries[k].Name() })
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(jobsDir, e.Name())
		j, resume, err := loadJob(dir)
		if err != nil {
			// A torn job dir (crash mid-admission) must not stop the
			// server from coming back up; skip it with a warning.
			fmt.Fprintf(os.Stderr, "server: skipping unreadable job dir %s: %v\n", dir, err)
			continue
		}
		if !s.q.add(j, resume) {
			j.setState(JobFailed, "queue full at recovery")
			s.q.add(j, false)
			continue
		}
		if resume {
			s.met.resumedJob()
		}
	}
	s.met.queueDepth(s.q.depth())
	return nil
}

// Start launches the scheduler. It is idempotent; the second and later
// calls are no-ops.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())
	s.wg.Add(1)
	go s.schedule()
}

// schedule pops pending jobs as slots free up and runs each through the
// shard supervisor.
func (s *Server) schedule() {
	defer s.wg.Done()
	sem := make(chan struct{}, s.cfg.MaxConcurrentJobs)
	for {
		j := s.q.pop()
		s.met.queueDepth(s.q.depth())
		if j == nil {
			select {
			case <-s.runCtx.Done():
				return
			case <-s.q.wake:
				continue
			}
		}
		select {
		case <-s.runCtx.Done():
			// Drain while waiting for a slot: the job stays queued on
			// disk and resumes after restart.
			return
		case sem <- struct{}{}:
		}
		s.wg.Add(1)
		go func(j *Job) {
			defer s.wg.Done()
			defer func() { <-sem }()
			s.runJob(s.runCtx, j)
		}(j)
	}
}

// Drain gracefully stops the server: admission flips to 503, running
// jobs are cancelled (shard checkpoints hold all completed trials) and
// re-queued to disk. It returns once every job has unwound or ctx
// expires.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	span := s.cfg.Trace.Start("drain", nil)
	if s.runCancel != nil {
		s.runCancel()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		span.EndWith(telemetry.Attrs{"clean": true})
		return nil
	case <-ctx.Done():
		span.EndWith(telemetry.Attrs{"clean": false})
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool { return s.draining.Load() }

// newJobID returns a random, sortable-enough job identifier.
func newJobID() (string, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("server: job id: %w", err)
	}
	return "job-" + hex.EncodeToString(b[:]), nil
}

// Submit validates and admits one submission, returning the durable
// job. It is the programmatic core of POST /jobs.
func (s *Server) Submit(req *SubmitRequest) (*Job, error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	if err := req.Validate(s.limits); err != nil {
		return nil, err
	}
	// Resolve defaults at admission so the persisted submission is
	// self-contained: a shard worker process or a restarted server must
	// not have to re-derive them from its own (possibly different)
	// configuration.
	if req.Shards == 0 {
		req.Shards = s.cfg.DefaultShards
		if req.Shards > s.limits.MaxShards {
			req.Shards = s.limits.MaxShards
		}
	}
	if req.Shards > req.N {
		req.Shards = req.N // no empty shards
	}
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	j := newJob(id, filepath.Join(s.cfg.Spool, "jobs", id), req)
	if err := j.save(); err != nil {
		return nil, err
	}
	if !s.q.add(j, true) {
		os.RemoveAll(j.dir)
		return nil, errQueueFull
	}
	s.met.queueDepth(s.q.depth())
	return j, nil
}

var (
	errDraining  = errors.New("server: draining, not admitting jobs")
	errQueueFull = errors.New("server: job queue full")
)

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) httpError(w http.ResponseWriter, code int, err error) {
	s.met.request(true)
	var re *RequestError
	if errors.As(err, &re) {
		writeJSON(w, code, re)
		return
	}
	writeJSON(w, code, &RequestError{Msg: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := DecodeSubmit(r.Body, int64(s.limits.MaxIRBytes)+1<<16)
	if err != nil {
		s.met.submit(false)
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	j, err := s.Submit(req)
	switch {
	case errors.Is(err, errDraining):
		s.met.submit(false)
		w.Header().Set("Retry-After", "30")
		s.httpError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, errQueueFull):
		s.met.submit(false)
		w.Header().Set("Retry-After", "10")
		s.httpError(w, http.StatusTooManyRequests, err)
		return
	case err != nil:
		s.met.submit(false)
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	s.met.submit(true)
	s.met.request(false)
	writeJSON(w, http.StatusAccepted, SubmitResponse{ID: j.ID, State: string(j.State())})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.q.list()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	s.met.request(false)
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	j := s.q.get(r.PathValue("id"))
	if j == nil {
		s.httpError(w, http.StatusNotFound, fmt.Errorf("server: no such job %q", r.PathValue("id")))
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	s.met.request(false)
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	res := j.Result()
	if res == nil {
		s.httpError(w, http.StatusConflict, fmt.Errorf("server: job %s has no result yet (state %s)", j.ID, j.State()))
		return
	}
	s.met.request(false)
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	if wasQueued := j.requestCancel(); wasQueued {
		// Never started: finalize directly, there is no runner to unwind.
		j.setState(JobCancelled, "cancelled by client")
		s.met.queueDepth(s.q.depth())
	}
	s.met.request(false)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.met.request(false)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.draining.Load(),
		"queued":   s.q.depth(),
	})
}

// handleEvents streams the job's lifecycle as JSONL: a state event, a
// progress event per change (coalesced under load), and a final done
// event. The stream ends when the job reaches a terminal state or the
// client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	s.met.request(false)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	_ = enc.Encode(Event{Type: "state", State: string(j.State())})
	if flusher != nil {
		flusher.Flush()
	}
	for {
		// Grab the broadcast channel BEFORE snapshotting: an update
		// landing between snapshot and wait then wakes us immediately
		// instead of being lost.
		ch := j.watch()
		ev := j.progressEvent()
		if err := enc.Encode(ev); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if ev.Type == "done" {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ch:
		}
	}
}
