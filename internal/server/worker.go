// This file runs shard workers — the processes (or goroutines) that
// execute one shard of a job's trial range against its own checkpoint.
//
// Two modes implement the same shardRunner contract. inproc runs the
// shard in this process: cheap, used by default and by most tests. exec
// re-executes the server binary as a child per shard: the shard then
// has a kernel-enforced failure domain — it can be SIGKILLed (the chaos
// drill in scripts/servercheck.sh does exactly that) without taking the
// server down, and the supervisor's retry-from-checkpoint path handles
// the corpse like any other shard failure. Either way the only durable
// artifact is the shard's checkpoint log, which is why a shard can be
// retried, killed, or moved across a server restart without losing
// completed trials.

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"trident/internal/fault"
	"trident/internal/ir"
	"trident/internal/sigctx"
)

// shardProgress carries a shard's live progress to the supervisor.
type shardProgress struct {
	done   int
	counts [int(fault.Errored) + 1]int
}

// shardPhase selects which slice of a job's campaign a shard attempt
// runs. Plain and statically-stratified jobs have a single phase
// (phaseWhole); adaptive jobs run a pilot wave, a cross-shard merge,
// then a main wave (see Server.runAdaptiveWaves).
type shardPhase string

const (
	phaseWhole shardPhase = ""      // the shard's entire slot range
	phasePilot shardPhase = "pilot" // the static-shape pilot-prefix slice (adaptive wave 1)
	phaseMain  shardPhase = "main"  // the plan-thinned main-phase slice (adaptive wave 2)
)

// shardRunner executes one attempt of one phase of one shard of a job.
// The attempt must leave the shard's checkpoint log consistent whether
// it returns nil, an error, or is cancelled — retries and restarts
// resume from it.
type shardRunner interface {
	runShard(ctx context.Context, j *Job, shard int, phase shardPhase, progress func(shardProgress)) error
}

// shardCheckpointPath names shard s's checkpoint log in a job dir (the
// main-phase log for adaptive jobs).
func shardCheckpointPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%02d.jsonl", shard))
}

// pilotShardCheckpointPath names shard s's pilot-wave checkpoint log.
func pilotShardCheckpointPath(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("pilot-shard-%02d.jsonl", shard))
}

// pilotMergedPath names the merged pilot log every main-wave worker
// re-derives the Neyman plan from.
func pilotMergedPath(dir string) string {
	return filepath.Join(dir, "pilot.jsonl")
}

func mergedCheckpointPath(dir string) string {
	return filepath.Join(dir, "merged.jsonl")
}

// runShardCampaign runs one phase of one shard of req's campaign against
// the job dir's checkpoints, dispatching on phase and sampling mode:
// adaptive waves run their pilot or plan-thinned slice, stratified jobs
// execute only the deterministically thinned subset of their slot range
// (fault.CampaignStratifiedShardCheckpoint), plain jobs the whole range.
func runShardCampaign(ctx context.Context, inj *fault.Injector, req *SubmitRequest, shard int, phase shardPhase, dir string) error {
	switch phase {
	case phasePilot:
		_, err := inj.CampaignAdaptivePilotShardCheckpoint(ctx, req.N, shard, req.Shards, pilotShardCheckpointPath(dir, shard))
		return err
	case phaseMain:
		_, err := inj.CampaignAdaptiveMainShardCheckpoint(ctx, req.N, shard, req.Shards, pilotMergedPath(dir), shardCheckpointPath(dir, shard))
		return err
	}
	if req.Stratify {
		_, err := inj.CampaignStratifiedShardCheckpoint(ctx, req.N, shard, req.Shards, shardCheckpointPath(dir, shard))
		return err
	}
	_, err := inj.CampaignShardCheckpoint(ctx, req.N, shard, req.Shards, shardCheckpointPath(dir, shard))
	return err
}

// chaosHook returns a per-trial delay TrialHook — the crash drills use
// it to hold campaigns open long enough to kill things mid-flight.
func chaosHook(d time.Duration) func(*ir.Instr, uint64, int, int) error {
	return func(*ir.Instr, uint64, int, int) error {
		time.Sleep(d)
		return nil
	}
}

// inprocRunner runs shards inside the server process. Every attempt
// builds a fresh module and injector, so concurrent shards of the same
// job never share mutable interpreter state, and a retried attempt
// starts from a clean engine plus the shard's checkpoint.
type inprocRunner struct {
	chaos time.Duration // per-trial delay for crash drills (0 = none)
}

func (r *inprocRunner) runShard(ctx context.Context, j *Job, shard int, phase shardPhase, progress func(shardProgress)) error {
	mod, err := j.req.BuildModule()
	if err != nil {
		return err
	}
	opts := j.req.faultOptions()
	opts.OnProgress = func(p fault.Progress) {
		var sp shardProgress
		sp.done = p.Done
		copy(sp.counts[:], p.Counts[:])
		progress(sp)
	}
	if r.chaos > 0 {
		opts.TrialHook = chaosHook(r.chaos)
	}
	inj, err := fault.New(mod, opts)
	if err != nil {
		return err
	}
	return runShardCampaign(ctx, inj, j.req, shard, phase, j.dir)
}

// execRunner runs each shard attempt as a child process: the server
// binary re-executed with -worker-dir/-worker-shard (see RunWorker).
// The child reports progress as Event JSONL on stdout; on cancellation
// it gets SIGTERM and grace to flush, then SIGKILL. A child that dies
// without finishing — killed, OOMed, crashed — surfaces as an error and
// is retried from its checkpoint by the supervisor.
type execRunner struct {
	path  string        // binary to exec (the server's own binary)
	grace time.Duration // TERM→KILL grace on cancellation
	chaos time.Duration // forwarded to the child for crash drills
}

func (r *execRunner) runShard(ctx context.Context, j *Job, shard int, phase shardPhase, progress func(shardProgress)) error {
	args := []string{
		"-worker-dir", j.dir,
		"-worker-shard", fmt.Sprint(shard),
	}
	if phase != phaseWhole {
		args = append(args, "-worker-phase", string(phase))
	}
	if r.chaos > 0 {
		args = append(args, "-chaos-trial-delay", r.chaos.String())
	}
	cmd := exec.Command(r.path, args...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("server: shard %d: %w", shard, err)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("server: shard %d: %w", shard, err)
	}

	// Reap the child on cancellation: TERM first so it can flush its
	// checkpoint tail, KILL once the grace expires.
	killDone := make(chan struct{})
	var killWG sync.WaitGroup
	killWG.Add(1)
	go func() {
		defer killWG.Done()
		select {
		case <-killDone:
		case <-ctx.Done():
			_ = cmd.Process.Signal(syscall.SIGTERM)
			grace := r.grace
			if grace <= 0 {
				grace = 5 * time.Second
			}
			select {
			case <-killDone:
			case <-time.After(grace):
				_ = cmd.Process.Kill()
			}
		}
	}()

	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev Event
		if json.Unmarshal(sc.Bytes(), &ev) != nil || ev.Type != "progress" {
			continue
		}
		var sp shardProgress
		sp.done = ev.Done
		for name, c := range ev.Counts {
			if o, ok := fault.OutcomeFromName(name); ok {
				sp.counts[o] = c
			}
		}
		progress(sp)
	}
	waitErr := cmd.Wait()
	close(killDone)
	killWG.Wait()
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if waitErr != nil {
		msg := strings.TrimSpace(stderr.String())
		if len(msg) > 512 {
			msg = "… " + msg[len(msg)-512:]
		}
		if msg != "" {
			return fmt.Errorf("server: shard %d worker: %v: %s", shard, waitErr, msg)
		}
		return fmt.Errorf("server: shard %d worker: %v", shard, waitErr)
	}
	return nil
}

// RunWorker is the shard-worker process entry point, invoked by
// cmd/fiserver (and the test binary) when -worker-dir is present. It
// loads the job's submission from dir, runs shard's slice of the given
// campaign phase ("" for single-phase jobs, "pilot"/"main" for adaptive
// waves) against the shard checkpoint, and emits progress Events as
// JSONL on stdout. The exit code follows the repo convention: 0 on
// completion, 130/143 when a signal interrupted it (checkpoint intact,
// the parent retries from it), 1 on error.
func RunWorker(dir string, shard int, phase string, chaos time.Duration) int {
	var meta jobMeta
	if err := readJSONFile(filepath.Join(dir, "job.json"), &meta); err != nil {
		fmt.Fprintf(os.Stderr, "fiserver worker: %v\n", err)
		return 1
	}
	req := meta.Req
	if req == nil || shard < 0 || req.Shards < 1 || shard >= req.Shards {
		fmt.Fprintf(os.Stderr, "fiserver worker: bad job or shard %d/%v\n", shard, req)
		return 1
	}
	switch shardPhase(phase) {
	case phaseWhole:
		if req.StratifyAdaptive {
			fmt.Fprintf(os.Stderr, "fiserver worker: adaptive job needs a -worker-phase\n")
			return 1
		}
	case phasePilot, phaseMain:
		if !req.StratifyAdaptive {
			fmt.Fprintf(os.Stderr, "fiserver worker: -worker-phase %q on a non-adaptive job\n", phase)
			return 1
		}
	default:
		fmt.Fprintf(os.Stderr, "fiserver worker: unknown -worker-phase %q\n", phase)
		return 1
	}
	ctx, stop, fired := sigctx.WithSignals(context.Background())
	defer stop()

	mod, err := req.BuildModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fiserver worker: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(os.Stdout)
	opts := req.faultOptions()
	// OnProgress runs under the campaign's result lock, so the encoder
	// needs no extra synchronization.
	opts.OnProgress = func(p fault.Progress) {
		ev := Event{Type: "progress", Done: p.Done, Total: p.Total, ElapsedMS: p.Elapsed.Milliseconds()}
		ev.Counts = make(map[string]int)
		for o := fault.Outcome(1); o <= fault.Errored; o++ {
			if c := p.Counts[o]; c > 0 {
				ev.Counts[o.String()] = c
			}
		}
		_ = enc.Encode(ev)
	}
	if chaos > 0 {
		opts.TrialHook = chaosHook(chaos)
	}
	inj, err := fault.New(mod, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fiserver worker: %v\n", err)
		return 1
	}
	if err := runShardCampaign(ctx, inj, req, shard, shardPhase(phase), dir); err != nil {
		if sig := fired(); sig != nil {
			// Interrupted: completed trials are in the checkpoint; the
			// supervisor resumes from there.
			return sigctx.ExitCode(sig)
		}
		fmt.Fprintf(os.Stderr, "fiserver worker: %v\n", err)
		return 1
	}
	return 0
}
