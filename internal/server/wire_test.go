package server

import (
	"strings"
	"testing"
	"time"
)

func TestDecodeSubmitStrict(t *testing.T) {
	cases := []struct {
		name string
		body string
		max  int64
		ok   bool
	}{
		{"minimal", `{"program":"pathfinder","n":10}`, 0, true},
		{"full", `{"program":"nw","n":5,"seed":7,"shards":2,"workers":3,"engine":"decoded"}`, 0, true},
		{"unknown field", `{"program":"nw","n":5,"bogus":1}`, 0, false},
		{"trailing data", `{"program":"nw","n":5} {"x":1}`, 0, false},
		{"not json", `hello`, 0, false},
		{"empty", ``, 0, false},
		{"wrong type", `{"program":"nw","n":"five"}`, 0, false},
		{"array body", `[1,2,3]`, 0, false},
		{"over size cap", `{"program":"` + strings.Repeat("x", 100) + `","n":5}`, 64, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeSubmit(strings.NewReader(c.body), c.max)
			if (err == nil) != c.ok {
				t.Fatalf("DecodeSubmit(%q) err = %v, want ok=%v", c.body, err, c.ok)
			}
			if err != nil {
				if _, isReq := err.(*RequestError); !isReq {
					t.Fatalf("DecodeSubmit error is %T, want *RequestError", err)
				}
			}
		})
	}
}

func TestValidate(t *testing.T) {
	lim := Limits{MaxTrials: 1000, MaxShards: 8, MaxWorkers: 8, MaxIRBytes: 1 << 16, MaxWall: time.Minute}
	ok := func() *SubmitRequest { return &SubmitRequest{Program: "pathfinder", N: 10} }
	cases := []struct {
		name  string
		mut   func(*SubmitRequest)
		field string // "" means valid
	}{
		{"valid", func(r *SubmitRequest) {}, ""},
		{"neither program nor ir", func(r *SubmitRequest) { r.Program = "" }, "program"},
		{"both program and ir", func(r *SubmitRequest) { r.IR = "func @main() {\n}" }, "program"},
		{"unknown program", func(r *SubmitRequest) { r.Program = "nonesuch" }, "program"},
		{"bad ir", func(r *SubmitRequest) { r.Program = ""; r.IR = "not ir at all" }, "ir"},
		{"n zero", func(r *SubmitRequest) { r.N = 0 }, "n"},
		{"n over budget", func(r *SubmitRequest) { r.N = 1001 }, "n"},
		{"shards negative", func(r *SubmitRequest) { r.Shards = -1 }, "shards"},
		{"shards over cap", func(r *SubmitRequest) { r.Shards = 9 }, "shards"},
		{"workers over cap", func(r *SubmitRequest) { r.Workers = 9 }, "workers"},
		{"bad engine", func(r *SubmitRequest) { r.Engine = "quantum" }, "engine"},
		{"retries over cap", func(r *SubmitRequest) { r.MaxRetries = 17 }, "max_retries"},
		{"negative trial timeout", func(r *SubmitRequest) { r.TrialTimeoutMS = -1 }, "trial_timeout_ms"},
		{"wall over budget", func(r *SubmitRequest) { r.MaxWallMS = time.Hour.Milliseconds() }, "max_wall_ms"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := ok()
			c.mut(req)
			err := req.Validate(lim)
			if c.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			re, isReq := err.(*RequestError)
			if !isReq {
				t.Fatalf("Validate() = %v (%T), want *RequestError on %s", err, err, c.field)
			}
			if re.Field != c.field {
				t.Fatalf("Validate() rejected field %q, want %q (%v)", re.Field, c.field, re)
			}
		})
	}
}

func TestValidIRSubmission(t *testing.T) {
	req := &SubmitRequest{
		IR: "module \"t\"\nfunc @main() void {\nentry:\n  %a = add i64 1, i64 2\n  print %a\n  ret\n}\n",
		N:  5,
	}
	if err := req.Validate(Limits{}); err != nil {
		t.Fatalf("Validate(ir) = %v", err)
	}
	mod, err := req.BuildModule()
	if err != nil || mod == nil {
		t.Fatalf("BuildModule() = %v, %v", mod, err)
	}
	if req.ModuleName() != "ir" {
		t.Fatalf("ModuleName() = %q", req.ModuleName())
	}
}

func TestWallBudget(t *testing.T) {
	lim := Limits{MaxWall: time.Minute}
	req := &SubmitRequest{}
	if got := req.WallBudget(lim); got != time.Minute {
		t.Fatalf("default WallBudget = %v", got)
	}
	req.MaxWallMS = 500
	if got := req.WallBudget(lim); got != 500*time.Millisecond {
		t.Fatalf("explicit WallBudget = %v", got)
	}
}

// FuzzDecodeSubmit: arbitrary bytes must never panic the decoder, and
// every rejection must be a typed *RequestError.
func FuzzDecodeSubmit(f *testing.F) {
	f.Add([]byte(`{"program":"pathfinder","n":10}`))
	f.Add([]byte(`{"ir":"func @main() {\n}","n":1,"seed":18446744073709551615}`))
	f.Add([]byte(`{"n":-1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"program":"x","n":1}{"program":"y","n":2}`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeSubmit(strings.NewReader(string(body)), 1<<16)
		if err != nil {
			if _, isReq := err.(*RequestError); !isReq {
				t.Fatalf("DecodeSubmit error is %T, want *RequestError", err)
			}
			return
		}
		// Whatever decoded must validate without panicking either way.
		_ = req.Validate(Limits{})
	})
}
