// This file is the shard supervisor: it runs an admitted job's shards
// through the configured runner, retries crashed shards from their own
// checkpoints with jittered exponential backoff, and classifies the
// job's terminal state. Crash tolerance is bounded — a shard that keeps
// dying exhausts its retry budget and the job degrades to a partial
// result carrying that shard's error, rather than retrying forever or
// discarding the shards that succeeded.
//
// Cancellation has three distinct causes with three distinct outcomes:
//
//	client cancel  → terminal "cancelled", best-effort partial result
//	wall budget    → terminal "partial", the budget is in the error
//	server drain   → NOT terminal: the job re-queues on disk and a
//	                 restarted server resumes it from its checkpoints
//
// which is why the supervisor inspects *why* the context died, not just
// that it died.

package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"trident/internal/fault"
	"trident/internal/telemetry"
)

// runJob drives one job from running to its terminal (or re-queued)
// state. parent is the server's run context — it dies on drain.
func (s *Server) runJob(parent context.Context, j *Job) {
	start := time.Now()
	s.met.jobStart()
	span := s.cfg.Trace.Start("job", telemetry.Attrs{
		"id": j.ID, "program": j.req.ModuleName(), "n": j.req.N, "shards": j.req.Shards,
	})

	jobCtx, cancelJob := context.WithCancel(parent)
	defer cancelJob()
	budget := j.req.WallBudget(s.limits)
	runCtx, cancelBudget := context.WithTimeout(jobCtx, budget)
	defer cancelBudget()

	j.mu.Lock()
	j.cancel = cancelJob
	j.started = start
	alreadyCancelled := j.cancelled
	j.mu.Unlock()
	if alreadyCancelled {
		// Cancelled between pop and start.
		s.finishJob(j, span, start, JobCancelled, "cancelled before start")
		return
	}
	// Result-cache short circuit: a clean, complete result for this exact
	// campaign (module hash + model + seed + n) skips sharding entirely.
	if res, ok := s.lookupResult(j); ok {
		j.setResult(res)
		j.setState(JobDone, "")
		s.met.jobEnd(JobDone, start)
		span.EndWith(telemetry.Attrs{"state": string(JobDone), "cached": true})
		return
	}
	j.setState(JobRunning, "")

	var waveErr error
	if j.req.StratifyAdaptive {
		waveErr = s.runAdaptiveWaves(runCtx, j)
	} else {
		s.runWave(runCtx, j, phaseWhole, nil)
	}

	// Why did we stop? Drain re-queues; everything else terminates. A
	// job whose shards all finished before the drain reached them has
	// nothing left to resume — it falls through and terminates normally.
	if runCtx.Err() != nil && parent.Err() != nil && !j.clientCancelled() && !j.allShardsDone() {
		// Server drain: shard checkpoints are flushed (every completed
		// trial is already on disk); park the job as queued so a restart
		// resumes it.
		j.setState(JobQueued, "")
		s.met.jobEnd(JobQueued, start)
		span.EndWith(telemetry.Attrs{"state": "requeued", "drain": true})
		return
	}

	state, errMsg := s.classify(runCtx, j)
	if waveErr != nil && state == JobDone {
		state, errMsg = JobFailed, waveErr.Error()
	}
	res, rerr := s.buildResult(j, state)
	if rerr != nil {
		state, errMsg = JobFailed, rerr.Error()
	} else {
		if res.Missing > 0 && state == JobDone {
			state = JobPartial
			if errMsg == "" {
				errMsg = fmt.Sprintf("%d of %d trials missing", res.Missing, j.req.N)
			}
		}
		res.State = string(state)
		j.setResult(res)
		s.storeResult(j, state, res)
	}
	s.finishJob(j, span, start, state, errMsg)
}

func (s *Server) finishJob(j *Job, span *telemetry.Span, start time.Time, state JobState, errMsg string) {
	j.setState(state, errMsg)
	s.met.jobEnd(state, start)
	span.EndWith(telemetry.Attrs{"state": string(state), "err": errMsg})
}

// classify folds the shards' final states into the job's.
func (s *Server) classify(runCtx context.Context, j *Job) (JobState, string) {
	if j.clientCancelled() {
		return JobCancelled, "cancelled by client"
	}
	if errors.Is(runCtx.Err(), context.DeadlineExceeded) {
		return JobPartial, fmt.Sprintf("wall-clock budget (%v) exhausted", j.req.WallBudget(s.limits))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var failed []string
	for i := range j.shards {
		if j.shards[i].state == "failed" {
			failed = append(failed, fmt.Sprintf("shard %d: %s", i, j.shards[i].err))
		}
	}
	if len(failed) > 0 {
		return JobPartial, strings.Join(failed, "; ")
	}
	return JobDone, ""
}

// runWave supervises every shard through one phase of the campaign,
// blocking until all of them reach a per-wave terminal state. base, when
// non-nil, carries each shard's progress from earlier waves so status
// counts stay cumulative across an adaptive job's two waves.
func (s *Server) runWave(ctx context.Context, j *Job, phase shardPhase, base []shardBase) {
	var wg sync.WaitGroup
	for i := 0; i < j.req.Shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			var b shardBase
			if base != nil {
				b = base[shard]
			}
			s.superviseShard(ctx, j, shard, phase, b)
		}(i)
	}
	wg.Wait()
}

// runAdaptiveWaves drives an adaptive job's two-wave protocol: every
// shard runs its slice of the static-shape pilot prefix, the pilot logs merge
// into one, and — only once every pilot slice completed, since the
// Neyman plan is a function of the full pilot — the main wave thins each
// shard's remaining slots under the plan each worker re-derives from the
// merged log. A pilot wave degraded by failed or cancelled shards stops
// here; buildResult then salvages the executed pilot records under the
// pilot plan.
func (s *Server) runAdaptiveWaves(ctx context.Context, j *Job) error {
	s.runWave(ctx, j, phasePilot, nil)
	if ctx.Err() != nil || !j.allShardsDone() {
		return nil
	}
	srcs := make([]string, 0, j.req.Shards)
	for i := 0; i < j.req.Shards; i++ {
		srcs = append(srcs, pilotShardCheckpointPath(j.dir, i))
	}
	if _, err := fault.MergeCheckpoints(pilotMergedPath(j.dir), srcs...); err != nil {
		return fmt.Errorf("server: job %s: pilot merge: %w", j.ID, err)
	}
	s.runWave(ctx, j, phaseMain, j.shardBases())
	return nil
}

// superviseShard runs one phase of one shard to completion, retrying
// failures from the shard's checkpoint until the retry budget runs out.
func (s *Server) superviseShard(ctx context.Context, j *Job, shard int, phase shardPhase, base shardBase) {
	for attempt := 0; ; attempt++ {
		j.updateShard(shard, func(si *shardInfo) {
			si.state = "running"
			si.attempts = attempt + 1
		})
		s.met.shardRun(attempt)
		attrs := telemetry.Attrs{"job": j.ID, "shard": shard, "attempt": attempt + 1}
		if phase != phaseWhole {
			attrs["phase"] = string(phase)
		}
		span := s.cfg.Trace.Start("shard", attrs)
		err := s.runner.runShard(ctx, j, shard, phase, func(sp shardProgress) {
			j.updateShard(shard, func(si *shardInfo) {
				si.done = base.done + sp.done
				for o := range sp.counts {
					si.counts[o] = base.counts[o] + sp.counts[o]
				}
			})
		})
		if err == nil {
			j.updateShard(shard, func(si *shardInfo) { si.state = "done" })
			span.EndWith(telemetry.Attrs{"state": "done"})
			return
		}
		if ctx.Err() != nil {
			j.updateShard(shard, func(si *shardInfo) { si.state = "cancelled" })
			span.EndWith(telemetry.Attrs{"state": "cancelled"})
			return
		}
		if attempt >= s.cfg.ShardRetries {
			s.met.shardFailed()
			j.updateShard(shard, func(si *shardInfo) {
				si.state = "failed"
				si.err = fmt.Sprintf("%v (after %d attempts)", err, attempt+1)
			})
			span.EndWith(telemetry.Attrs{"state": "failed", "err": err.Error()})
			return
		}
		delay := backoffDelay(s.cfg.RetryBase, attempt, j.req.Seed, shard)
		span.EndWith(telemetry.Attrs{"state": "retry", "err": err.Error(), "backoff_ms": delay.Milliseconds()})
		select {
		case <-ctx.Done():
			j.updateShard(shard, func(si *shardInfo) { si.state = "cancelled" })
			return
		case <-time.After(delay):
		}
	}
}

// backoffDelay is exponential backoff with deterministic splitmix64
// jitter: base·2^attempt scaled into [50%, 100%] by a hash of
// (seed, shard, attempt). Deterministic jitter keeps crash-retry tests
// reproducible while still decorrelating shards that died together.
func backoffDelay(base time.Duration, attempt int, seed uint64, shard int) time.Duration {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if attempt > 16 {
		attempt = 16
	}
	d := base << uint(attempt)
	const maxDelay = 30 * time.Second
	if d > maxDelay {
		d = maxDelay
	}
	h := seed ^ uint64(shard)<<32 ^ uint64(attempt)<<16
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	// Scale into [d/2, d].
	return d/2 + time.Duration(h%uint64(d/2+1))
}

// buildResult merges whatever shard checkpoints exist and reconstructs
// the campaign result from the merged log — replay only, no trial
// re-executes. For done jobs this is the bit-identity path; for
// degraded and cancelled jobs it salvages every completed trial.
func (s *Server) buildResult(j *Job, state JobState) (*Result, error) {
	var srcs []string
	if j.req.StratifyAdaptive {
		// Adaptive jobs keep pilot and main records in separate per-shard
		// logs; the final merge folds both waves.
		for i := 0; i < j.req.Shards; i++ {
			p := pilotShardCheckpointPath(j.dir, i)
			if _, err := os.Stat(p); err == nil {
				srcs = append(srcs, p)
			}
		}
	}
	for i := 0; i < j.req.Shards; i++ {
		p := shardCheckpointPath(j.dir, i)
		if _, err := os.Stat(p); err == nil {
			srcs = append(srcs, p)
		}
	}
	if len(srcs) == 0 {
		if state == JobCancelled {
			// Nothing ran before the cancel: an empty result, not an error.
			return &Result{ID: j.ID, N: j.req.N, Missing: j.req.N, Counts: map[string]int{}, Trials: []TrialRecord{}}, nil
		}
		return nil, fmt.Errorf("server: job %s: no shard checkpoints to merge", j.ID)
	}
	merged := mergedCheckpointPath(j.dir)
	if _, err := fault.MergeCheckpoints(merged, srcs...); err != nil {
		return nil, err
	}
	mod, err := j.req.BuildModule()
	if err != nil {
		return nil, err
	}
	inj, err := fault.New(mod, j.req.faultOptions())
	if err != nil {
		return nil, err
	}
	if j.req.StratifyAdaptive {
		ares, missing, aerr := inj.AdaptiveFromCheckpoint(j.req.N, merged)
		if aerr != nil {
			return nil, aerr
		}
		out := resultToWire(j, ares.CampaignResult, missing)
		out.Stratified = true
		out.Adaptive = true
		out.PilotExecuted = ares.PilotExecuted
		out.ExecutedN = ares.ExecutedN()
		out.WeightedSDC = ares.WeightedSDC()
		out.WeightedErrorBar95 = ares.WeightedErrorBar95()
		out.EffectiveN = ares.EffectiveN()
		return out, nil
	}
	if j.req.Stratify {
		sres, missing, serr := inj.StratifiedFromCheckpoint(j.req.N, merged)
		if serr != nil {
			return nil, serr
		}
		out := resultToWire(j, sres.CampaignResult, missing)
		out.Stratified = true
		out.ExecutedN = sres.ExecutedN()
		out.WeightedSDC = sres.WeightedSDC()
		out.WeightedErrorBar95 = sres.WeightedErrorBar95()
		out.EffectiveN = sres.EffectiveN()
		return out, nil
	}
	res, missing, err := inj.CampaignFromCheckpoint(j.req.N, merged)
	if err != nil {
		return nil, err
	}
	out := resultToWire(j, res, missing)
	return out, nil
}

// wireTrials converts a campaign's trials into wire records, in
// sampling order — the unit of comparison for every bit-identity test.
func wireTrials(res *fault.CampaignResult) []TrialRecord {
	errByIndex := make(map[int]fault.TrialError, len(res.Errs))
	for _, te := range res.Errs {
		errByIndex[te.Index] = te
	}
	out := make([]TrialRecord, 0, len(res.Trials))
	for i, tr := range res.Trials {
		rec := TrialRecord{
			Func:     tr.Instr.Block.Fn.Name,
			Instr:    tr.Instr.ID,
			Instance: tr.Instance,
			Bit:      tr.Bit,
			Outcome:  tr.Outcome.String(),
			Latency:  tr.CrashLatency,
		}
		if te, ok := errByIndex[i]; ok {
			rec.Attempts = te.Attempts
			rec.Err = te.Err.Error()
		}
		out = append(out, rec)
	}
	return out
}

// resultToWire converts a fault.CampaignResult into the wire Result.
func resultToWire(j *Job, res *fault.CampaignResult, missing int) *Result {
	out := &Result{
		ID:         j.ID,
		N:          j.req.N,
		Missing:    missing,
		Counts:     make(map[string]int),
		SDCProb:    res.SDCProb(),
		ErrorBar95: res.ErrorBar95(),
		Trials:     wireTrials(res),
	}
	for o, c := range res.Counts {
		if c > 0 {
			out.Counts[o.String()] = c
		}
	}
	st := j.status()
	for _, ss := range st.Shards {
		if ss.State == "failed" {
			out.FailedShards = append(out.FailedShards, ss)
		}
	}
	sort.Slice(out.FailedShards, func(a, b int) bool {
		return out.FailedShards[a].Shard < out.FailedShards[b].Shard
	})
	return out
}
