#!/usr/bin/env bash
# stratcheck.sh — the stratified-sampling drill, run by `make check`.
#
# It exercises the stratified live-bit importance-sampling contract
# (ANALYSIS.md, "Stratified sampling over live bits") end to end through
# the real CLI:
#
#   1. run a plain campaign on rgb2gray (the narrow-output kernel where
#      the masked stratum is large), checkpointing every trial
#   2. run the identical campaign with -stratify under the default plan
#   3. the stratified run must actually thin (fewer executed trials
#      than drawn slots) and report the weighted estimate lines
#   4. under the default plan — only provably-masked bits are thinned,
#      and the liveness oracle guarantees them Benign — the weighted
#      SDC probability must equal the plain campaign's SDC probability
#      to the printed precision
#   5. the stratified checkpoint transcript must be a subset of the
#      plain transcript: same records, none invented, none rewritten
#   6. re-running the stratified campaign against its own checkpoint
#      must replay to the identical summary
#   7. resuming a plain checkpoint with -stratify (and a stratified one
#      without) must be refused — mixing differently-thinned logs would
#      silently bias the weighted estimator
#
# Passing means: stratification changes which trials *execute*, the
# reweighting reports the same probability the full campaign measures,
# and checkpoint headers fence the two transcript kinds apart.
set -euo pipefail

GO=${GO:-go}
TMP=$(mktemp -d /tmp/stratcheck.XXXXXX)
trap 'rm -rf "$TMP"' EXIT INT TERM

fail() {
    echo "stratcheck: FAIL: $*" >&2
    exit 1
}

PROG=rgb2gray
N=400
SEED=9

echo "stratcheck: building fi"
$GO build -o "$TMP/fi" ./cmd/fi

run() { # log checkpoint extra-flags...
    log=$1
    ck=$2
    shift 2
    "$TMP/fi" -program "$PROG" -n "$N" -seed "$SEED" -progress=false \
        -checkpoint "$ck" "$@" >"$log" 2>>"$TMP/stderr.log"
}

echo "stratcheck: plain baseline"
run "$TMP/plain.log" "$TMP/plain.jsonl"

echo "stratcheck: stratified campaign"
run "$TMP/strat.log" "$TMP/strat.jsonl" -stratify

executed=$(sed -n 's/^ *\([0-9][0-9]*\) of [0-9]* drawn slots executed$/\1/p' "$TMP/strat.log")
[ -n "$executed" ] || fail "summary is missing the executed-slots line"
[ "$executed" -lt "$N" ] || fail "stratification thinned nothing ($executed of $N executed)"
grep -q '^stratified sampling (plan ' "$TMP/strat.log" \
    || fail "summary is missing the stratification plan"

# The default plan thins only the provably-masked stratum, whose bits
# the liveness analysis guarantees Benign — so the reweighted estimate
# must land exactly on the plain campaign's SDC probability.
plain_sdc=$(sed -n 's/^SDC probability: \([0-9.]*\)%.*/\1/p' "$TMP/plain.log")
weighted_sdc=$(sed -n 's/^weighted SDC probability: \([0-9.]*\)%.*/\1/p' "$TMP/strat.log")
[ -n "$plain_sdc" ] && [ -n "$weighted_sdc" ] \
    || fail "could not extract SDC probabilities (plain '$plain_sdc', weighted '$weighted_sdc')"
[ "$plain_sdc" = "$weighted_sdc" ] \
    || fail "weighted SDC $weighted_sdc% drifted from the plain campaign's $plain_sdc%"

# Subset check: every stratified trial record (headers aside — they
# legitimately differ in the stratification hash) must appear in the
# plain transcript, byte for byte.
grep -v '"version"' "$TMP/strat.jsonl" | sort >"$TMP/strat.sorted"
grep -v '"version"' "$TMP/plain.jsonl" | sort >"$TMP/plain.sorted"
extra=$(comm -23 "$TMP/strat.sorted" "$TMP/plain.sorted")
[ -z "$extra" ] || fail "stratified transcript has records the plain campaign never ran: $extra"
# Sampling draws with replacement, and the log keeps one record per
# unique (fn, instr, instance, bit) key — so the record count is at
# most the executed count, and must still be a real campaign's worth.
strat_n=$(wc -l <"$TMP/strat.sorted")
[ "$strat_n" -gt 0 ] && [ "$strat_n" -le "$executed" ] \
    || fail "checkpoint holds $strat_n trial records for $executed executed trials"

echo "stratcheck: checkpoint replay"
run "$TMP/strat2.log" "$TMP/strat.jsonl" -stratify -resume
cmp "$TMP/strat.log" "$TMP/strat2.log" \
    || fail "replayed stratified summary differs from the original run"

echo "stratcheck: mismatched-resume refusal"
if "$TMP/fi" -program "$PROG" -n "$N" -seed "$SEED" -progress=false \
    -checkpoint "$TMP/plain.jsonl" -stratify -resume >"$TMP/refuse1.log" 2>&1; then
    fail "resuming a plain checkpoint with -stratify was not refused"
fi
grep -qi 'stratif' "$TMP/refuse1.log" \
    || fail "plain-as-stratified refusal does not explain the stratification mismatch"
if "$TMP/fi" -program "$PROG" -n "$N" -seed "$SEED" -progress=false \
    -checkpoint "$TMP/strat.jsonl" -resume >"$TMP/refuse2.log" 2>&1; then
    fail "resuming a stratified checkpoint without -stratify was not refused"
fi
grep -qi 'stratif' "$TMP/refuse2.log" \
    || fail "stratified-as-plain refusal does not explain the stratification mismatch"

echo "stratcheck: PASS"
