#!/bin/sh
# doccheck.sh — fail if any Go package lacks a package-level doc comment.
#
# Every package directory must contain at least one file opening with a
# "// Package <name> ..." comment (or "// Command <name> ..." for main
# packages), the form godoc and pkg.go.dev surface. Run from the repo
# root; exits non-zero listing undocumented packages.

set -eu

fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
    if ! grep -l -E '^// (Package|Command) ' "$dir"/*.go >/dev/null 2>&1; then
        echo "doccheck: no package doc comment in $dir" >&2
        fail=1
    fi
done
exit $fail
