#!/usr/bin/env bash
# doccheck.sh — the documentation lint, run by `make doc`.
#
# Three checks:
#
#   1. Every Go package directory must contain at least one file opening
#      with a "// Package <name> ..." comment (or "// Command <name> ..."
#      for main packages), the form godoc and pkg.go.dev surface.
#   2. Every internal/ package's doc comment must cite the prose document
#      that specifies it — DESIGN.md, ANALYSIS.md or OBSERVABILITY.md —
#      so the reference docs and the code can be navigated in both
#      directions and a package can't silently drift out of the docs.
#   3. README.md's cmd/fi flag table must list exactly the flags the
#      binary actually defines (diffed against -h output), so the table
#      can never go stale against the CLI.
#
# Run from the repo root; exits non-zero listing every violation.

set -euo pipefail

GO=${GO:-go}
TMP=$(mktemp -d /tmp/doccheck.XXXXXX)
trap 'rm -rf "$TMP"' EXIT INT TERM

fail=0

# 1+2: package doc presence, and doc-file citation for internal/.
for dir in $($GO list -f '{{.Dir}}' ./...); do
    docfile=$(grep -l -E '^// (Package|Command) ' "$dir"/*.go 2>/dev/null | head -1)
    if [ -z "$docfile" ]; then
        echo "doccheck: no package doc comment in $dir" >&2
        fail=1
        continue
    fi
    case "$dir" in
    */internal/*)
        # The doc comment is the leading // block of the doc file; it
        # must mention at least one of the reference documents.
        if ! awk '/^\/\//{c = c $0; next} {exit}
                  END{exit !(c ~ /DESIGN\.md|ANALYSIS\.md|OBSERVABILITY\.md/)}' "$docfile"; then
            echo "doccheck: package doc in $docfile cites none of DESIGN.md/ANALYSIS.md/OBSERVABILITY.md" >&2
            fail=1
        fi
        ;;
    esac
done

# 3: README's cmd/fi flag table vs. the binary's actual flag set.
# (-h exits 2 by flag-package convention; that is not a failure here.)
$GO build -o "$TMP/fi" ./cmd/fi
{ "$TMP/fi" -h 2>&1 || true; } | sed -n 's/^  -\([a-z-]*\).*/\1/p' | sort >"$TMP/cli.flags"
sed -n 's/^| `-\([a-z-]*\)[^`]*`.*/\1/p' README.md | sort >"$TMP/readme.flags"
if ! cmp -s "$TMP/cli.flags" "$TMP/readme.flags"; then
    echo "doccheck: README.md cmd/fi flag table is out of sync with the binary:" >&2
    diff "$TMP/readme.flags" "$TMP/cli.flags" >&2 || true
    echo "doccheck: (< only in README, > only in fi -h)" >&2
    fail=1
fi

exit $fail
