#!/usr/bin/env bash
# prunecheck.sh — the bit-liveness pruning drill, run by `make check`.
#
# It exercises the exact-reweighting contract (DESIGN.md §5i) end to end
# through the real CLI:
#
#   1. run an unpruned campaign on rgb2gray (the narrow-output kernel
#      where the pass bites), checkpointing every trial
#   2. run the identical campaign with -prune-bits, on both engines
#   3. the pruned runs must actually prune (the summary reports a
#      nonzero masked fraction and a nonzero pruned-trial count)
#   4. the pruned summaries — tallies, rates, SDC CI — must be
#      line-identical to the unpruned one once the two pruning-status
#      lines are stripped
#   5. the pruned checkpoint transcripts must contain exactly the same
#      trial records as the unpruned one (sorted to erase worker
#      completion order, which is the only legitimate difference)
#
# Passing means: pruning changes which trials *execute*, and nothing
# about what the campaign *reports*.
set -euo pipefail

GO=${GO:-go}
TMP=$(mktemp -d /tmp/prunecheck.XXXXXX)
trap 'rm -rf "$TMP"' EXIT INT TERM

fail() {
    echo "prunecheck: FAIL: $*" >&2
    exit 1
}

PROG=rgb2gray
N=400
SEED=9

echo "prunecheck: building fi"
$GO build -o "$TMP/fi" ./cmd/fi

run() { # log checkpoint extra-flags...
    log=$1
    ck=$2
    shift 2
    "$TMP/fi" -program "$PROG" -n "$N" -seed "$SEED" -progress=false \
        -checkpoint "$ck" "$@" >"$log" 2>>"$TMP/stderr.log"
}

echo "prunecheck: unpruned baseline"
run "$TMP/plain.log" "$TMP/plain.jsonl"

echo "prunecheck: pruned campaign (legacy engine)"
run "$TMP/pruned.log" "$TMP/pruned.jsonl" -prune-bits

echo "prunecheck: pruned campaign (decoded engine)"
run "$TMP/pruned-dec.log" "$TMP/pruned-dec.jsonl" -prune-bits -engine decoded

check_pruned() { # log checkpoint label
    grep '^bit-liveness pruning:' "$1" | grep -qv ' 0\.0% ' \
        || fail "$3: summary reports no masked fraction: $(grep '^bit-liveness pruning:' "$1" || echo missing)"
    grep -q 'pruned statically (no execution)$' "$1" \
        || fail "$3: no trials were pruned (expected a nonzero pruned count)"
    # Everything but the two pruning-status lines must match the
    # unpruned summary exactly: same tallies, same rates, same CI.
    grep -v 'bit-liveness pruning:\|pruned statically' "$1" >"$TMP/stripped.log"
    cmp "$TMP/stripped.log" "$TMP/plain.log" \
        || fail "$3: summary differs from the unpruned campaign"
    # Same per-trial transcript, worker completion order aside. The
    # header line legitimately differs (it records the pruning and
    # stratification configuration the log ran under), so only trial
    # records are compared.
    grep -v '"version"' "$2" | sort >"$TMP/want.sorted"
    grep -v '"version"' "$TMP/plain.jsonl" | sort >"$TMP/got.sorted"
    cmp "$TMP/want.sorted" "$TMP/got.sorted" \
        || fail "$3: checkpoint transcript differs from the unpruned campaign"
}

check_pruned "$TMP/pruned.log" "$TMP/pruned.jsonl" "legacy"
check_pruned "$TMP/pruned-dec.log" "$TMP/pruned-dec.jsonl" "decoded"

echo "prunecheck: PASS"
