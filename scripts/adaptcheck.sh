#!/usr/bin/env bash
# adaptcheck.sh — the adaptive-stratification drill, run by `make check`.
#
# It exercises the two-phase Neyman-allocation contract (ANALYSIS.md,
# "Adaptive (Neyman) allocation") end to end through the real CLI:
#
#   1. run an adaptive campaign on rgb2gray (the narrow-output kernel
#      where the strata differ enough for allocation to matter) with a
#      checkpoint; the summary must report the pilot, a derived plan,
#      and thinning (fewer executed trials than drawn slots)
#   2. re-running against its own checkpoint must replay to the
#      byte-identical summary — the plan is re-derived from the pilot
#      records, never trusted from disk
#   3. resuming a plain or stratified checkpoint with -stratify-adaptive
#      (and an adaptive one without) must be refused — the three
#      transcript kinds thin differently and must never mix
#   4. a plain compositional run on blackscholes (the multi-function
#      kernel) seeds the per-function profile cache; an adaptive
#      compositional run against that cache must derive every plan from
#      the cached tallies — all functions SEED, zero pilot trials
#   5. a warm adaptive re-run must hit the same entries and compose
#      byte-identically
#   6. a cold adaptive run against a fresh cache pays for its pilots
#      (all functions MISS, pilot trials > 0) and must still compose
#      byte-identically to the seeded run — skipping the pilot changes
#      what executes, never the composed result
#
# Passing means: pilot-derived plans replay deterministically, checkpoint
# headers fence adaptive transcripts from the other kinds, and cached
# profiles buy back the whole pilot without changing a byte of output.
set -euo pipefail

GO=${GO:-go}
TMP=$(mktemp -d /tmp/adaptcheck.XXXXXX)
trap 'rm -rf "$TMP"' EXIT INT TERM

fail() {
    echo "adaptcheck: FAIL: $*" >&2
    exit 1
}

PROG=rgb2gray
N=400
SEED=9

echo "adaptcheck: building fi"
$GO build -o "$TMP/fi" ./cmd/fi

run() { # log checkpoint extra-flags...
    log=$1
    ck=$2
    shift 2
    "$TMP/fi" -program "$PROG" -n "$N" -seed "$SEED" -progress=false \
        -checkpoint "$ck" "$@" >"$log" 2>>"$TMP/stderr.log"
}

echo "adaptcheck: adaptive campaign"
run "$TMP/adapt.log" "$TMP/adapt.jsonl" -stratify-adaptive

grep -q '^adaptive stratified sampling (pilot [1-9][0-9]* of [0-9]* slots, derived plan ' "$TMP/adapt.log" \
    || fail "summary is missing the pilot/derived-plan line"
executed=$(sed -n 's/^ *\([0-9][0-9]*\) of [0-9]* drawn slots executed$/\1/p' "$TMP/adapt.log")
[ -n "$executed" ] || fail "summary is missing the executed-slots line"
[ "$executed" -lt "$N" ] || fail "the adaptive campaign thinned nothing ($executed of $N executed)"
grep -q '^  pilot spent [0-9]*% of the executed budget' "$TMP/adapt.log" \
    || fail "summary is missing the pilot budget-share line"

echo "adaptcheck: checkpoint replay"
run "$TMP/adapt2.log" "$TMP/adapt.jsonl" -stratify-adaptive -resume
cmp "$TMP/adapt.log" "$TMP/adapt2.log" \
    || fail "replayed adaptive summary differs from the original run"

echo "adaptcheck: mismatched-resume refusals"
run "$TMP/plain.log" "$TMP/plain.jsonl"
if "$TMP/fi" -program "$PROG" -n "$N" -seed "$SEED" -progress=false \
    -checkpoint "$TMP/plain.jsonl" -stratify-adaptive -resume >"$TMP/refuse1.log" 2>&1; then
    fail "resuming a plain checkpoint with -stratify-adaptive was not refused"
fi
grep -qi 'adaptive' "$TMP/refuse1.log" \
    || fail "plain-as-adaptive refusal does not explain the campaign-kind mismatch"
if "$TMP/fi" -program "$PROG" -n "$N" -seed "$SEED" -progress=false \
    -checkpoint "$TMP/adapt.jsonl" -resume >"$TMP/refuse2.log" 2>&1; then
    fail "resuming an adaptive checkpoint without -stratify-adaptive was not refused"
fi
grep -qi 'adaptive' "$TMP/refuse2.log" \
    || fail "adaptive-as-plain refusal does not explain the campaign-kind mismatch"
if "$TMP/fi" -program "$PROG" -n "$N" -seed "$SEED" -progress=false \
    -checkpoint "$TMP/adapt.jsonl" -stratify -resume >"$TMP/refuse3.log" 2>&1; then
    fail "resuming an adaptive checkpoint with -stratify was not refused"
fi
grep -qi 'adaptive' "$TMP/refuse3.log" \
    || fail "adaptive-as-stratified refusal does not explain the campaign-kind mismatch"

# The compositional track uses blackscholes: two functions, so the
# hit/miss/seed accounting distinguishes per-function states.
crun() { # compose-out cache-dir log extra-flags...
    cout=$1
    cache=$2
    log=$3
    shift 3
    "$TMP/fi" -program blackscholes -n "$N" -seed "$SEED" -progress=false \
        -cache-dir "$cache" -compose-out "$cout" "$@" >"$log" 2>>"$TMP/stderr.log"
}

echo "adaptcheck: plain compositional run (seeds the profile cache)"
crun "$TMP/plain.json" "$TMP/cache" "$TMP/cplain.log"
grep -q '^cache: 0 hit(s), 2 miss(es)$' "$TMP/cplain.log" \
    || fail "plain seeding run: want 2 misses, got: $(grep '^cache:' "$TMP/cplain.log")"

echo "adaptcheck: adaptive compositional run (plans seeded, no pilot)"
crun "$TMP/seeded.json" "$TMP/cache" "$TMP/seeded.log" -stratify-adaptive
grep -q '^cache: 2 hit(s), 0 miss(es); 2 plan(s) seeded from plain profiles, 0 pilot trials executed$' "$TMP/seeded.log" \
    || fail "seeded run: want 2 seeded plans and 0 pilot trials, got: $(grep '^cache:' "$TMP/seeded.log")"
seeds=$(grep -c 'SEED (plan from plain profile, no pilot)' "$TMP/seeded.log") \
    && [ "$seeds" -eq 2 ] || fail "want both functions SEED, got $seeds"

echo "adaptcheck: warm adaptive re-run (byte-identical compose)"
crun "$TMP/warm.json" "$TMP/cache" "$TMP/warm.log" -stratify-adaptive
cmp "$TMP/seeded.json" "$TMP/warm.json" \
    || fail "warm adaptive compose output differs from the seeded run"

echo "adaptcheck: cold adaptive run (fresh cache, pilots execute)"
crun "$TMP/cold.json" "$TMP/cache-fresh" "$TMP/cold.log" -stratify-adaptive
grep -q '^cache: 0 hit(s), 2 miss(es); 0 plan(s) seeded' "$TMP/cold.log" \
    || fail "cold run: want 2 misses, got: $(grep '^cache:' "$TMP/cold.log")"
pilots=$(sed -n 's/^cache: .*, \([0-9][0-9]*\) pilot trials executed$/\1/p' "$TMP/cold.log")
[ -n "$pilots" ] && [ "$pilots" -gt 0 ] \
    || fail "cold run executed no pilot trials ('$pilots')"
cmp "$TMP/seeded.json" "$TMP/cold.json" \
    || fail "seeded compose differs from cold (pilot-skipping changed the result)"

echo "adaptcheck: PASS"
