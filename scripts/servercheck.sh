#!/usr/bin/env bash
# servercheck.sh — the campaign server's chaos drill, run by `make check`.
#
# It exercises the full crash-tolerance story against real processes:
#
#   1. start fiserver with exec-mode shard workers and a per-trial chaos
#      delay so the campaign stays open long enough to attack
#   2. submit a sharded pathfinder campaign, detached
#   3. SIGKILL one shard worker process mid-campaign (kernel-enforced
#      crash; no goroutine cleanup gets to run)
#   4. SIGTERM the server mid-campaign and require exit code 143 with
#      the job re-queued on disk
#   5. restart the server over the same spool (no chaos), attach, and
#      wait for the resumed job to finish
#   6. run the same campaign again cleanly and compare the per-trial
#      JSONL dumps byte for byte
#
# Passing means: a killed worker was retried from its checkpoint, a
# drained server resumed after restart, and none of it changed a single
# trial outcome.
set -euo pipefail

GO=${GO:-go}
TMP=$(mktemp -d /tmp/servercheck.XXXXXX)
SPOOL="$TMP/spool"
SRV_PID=""

cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    # Reap any shard workers left over from a failed run.
    for p in /proc/[0-9]*; do
        if tr '\0' ' ' <"$p/cmdline" 2>/dev/null | grep -q -- "-worker-dir $SPOOL"; then
            kill -9 "${p#/proc/}" 2>/dev/null || true
        fi
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "servercheck: FAIL: $*" >&2
    exit 1
}

echo "servercheck: building binaries"
$GO build -o "$TMP/fiserver" ./cmd/fiserver
$GO build -o "$TMP/fi" ./cmd/fi

start_server() { # args: extra fiserver flags...
    rm -f "$TMP/addr"
    "$TMP/fiserver" -addr 127.0.0.1:0 -addr-file "$TMP/addr" -spool "$SPOOL" \
        -worker-mode exec -shard-retries 3 -retry-base 100ms "$@" \
        >>"$TMP/server.log" 2>&1 &
    SRV_PID=$!
    i=0
    while [ ! -s "$TMP/addr" ]; do
        i=$((i + 1))
        [ $i -gt 100 ] && fail "server did not write its address (log: $(cat "$TMP/server.log"))"
        sleep 0.1
    done
    ADDR=$(cat "$TMP/addr")
}

find_worker() { # prints the pid of one shard worker process, if any
    for p in /proc/[0-9]*; do
        if tr '\0' ' ' <"$p/cmdline" 2>/dev/null | grep -q -- "-worker-dir $SPOOL"; then
            echo "${p#/proc/}"
            return 0
        fi
    done
    return 1
}

N=1200
SEED=20260807
SHARDS=3

echo "servercheck: starting fiserver (exec workers, chaos delay)"
start_server -chaos-trial-delay 20ms

echo "servercheck: submitting sharded campaign (n=$N, shards=$SHARDS)"
SUBMIT=$("$TMP/fi" -remote "http://$ADDR" -program pathfinder -n $N -seed $SEED \
    -shards $SHARDS -workers 1 -detach -progress=false)
JOB=$(echo "$SUBMIT" | sed -n 's/^submitted job \(job-[0-9a-f]*\).*/\1/p')
[ -n "$JOB" ] || fail "could not parse job id from: $SUBMIT"
echo "servercheck: job $JOB"

echo "servercheck: hunting a shard worker to SIGKILL"
i=0
WORKER=""
while [ -z "$WORKER" ]; do
    i=$((i + 1))
    [ $i -gt 300 ] && fail "no shard worker process appeared"
    WORKER=$(find_worker || true)
    [ -n "$WORKER" ] || sleep 0.1
done
kill -9 "$WORKER" || fail "could not SIGKILL worker $WORKER"
echo "servercheck: SIGKILLed shard worker $WORKER"

# Give the supervisor a moment to notice the corpse and start the retry,
# so the drain below exercises retry-in-progress state too.
sleep 1

echo "servercheck: SIGTERMing the server mid-campaign"
kill -TERM "$SRV_PID"
rc=0
wait "$SRV_PID" || rc=$?
SRV_PID=""
[ "$rc" -eq 143 ] || fail "server exit code $rc after SIGTERM, want 143"

STATE=$(sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' "$SPOOL/jobs/$JOB/state.json")
[ "$STATE" = "queued" ] || fail "job state after drain is '$STATE', want 'queued'"
echo "servercheck: server exited 143, job re-queued on disk"

# The result cache must be off here: with it on, the clean comparison
# run below would be answered from the resumed job's cached result, and
# the bit-identity check would compare the result against itself.
echo "servercheck: restarting server over the same spool (no chaos)"
start_server -result-cache=false

echo "servercheck: attaching to the resumed job"
"$TMP/fi" -remote "http://$ADDR" -job "$JOB" -trials-out "$TMP/resumed.jsonl" \
    -progress=false >"$TMP/attach.log" 2>&1 ||
    fail "resumed job did not complete: $(cat "$TMP/attach.log")"
grep -q "^job $JOB: done" "$TMP/attach.log" || fail "resumed job not done: $(cat "$TMP/attach.log")"

echo "servercheck: running the same campaign cleanly for comparison"
"$TMP/fi" -remote "http://$ADDR" -program pathfinder -n $N -seed $SEED \
    -shards $SHARDS -trials-out "$TMP/clean.jsonl" -progress=false \
    >"$TMP/clean.log" 2>&1 || fail "clean run failed: $(cat "$TMP/clean.log")"

cmp "$TMP/resumed.jsonl" "$TMP/clean.jsonl" ||
    fail "resumed campaign diverged from clean run (kill+drain+resume changed trial outcomes)"

LINES=$(wc -l <"$TMP/resumed.jsonl")
[ "$LINES" -eq $N ] || fail "expected $N trial records, got $LINES"

echo "servercheck: shutting down"
kill -TERM "$SRV_PID"
rc=0
wait "$SRV_PID" || rc=$?
SRV_PID=""
[ "$rc" -eq 143 ] || fail "server exit code $rc on final SIGTERM, want 143"

echo "servercheck: PASS (killed worker retried, drained server resumed, $LINES trials bit-identical)"
