#!/usr/bin/env bash
# cachecheck.sh — the compositional cache's edit-and-rerun drill, run by
# `make check`.
#
# It exercises the incremental-campaign story end to end through the
# real CLI:
#
#   1. dump blackscholes (the multi-function kernel) to textual IR
#   2. cold run against an empty cache: every function must MISS and
#      the cache must populate
#   3. identical warm re-run: every function must HIT and the composed
#      JSON must be byte-identical to the cold run's
#   4. edit exactly one function (@cndf) by renaming every register —
#      semantics-preserving but hash-changing, the cheapest honest
#      stand-in for "the developer edited one function"
#   5. incremental re-run: exactly @cndf re-injects, @main replays
#   6. from-scratch run of the edited module against a fresh cache:
#      the composed JSON must byte-compare with the incremental run's
#
# Passing means: cache keys are stable across runs, an edit invalidates
# only the edited function, and the composed incremental result is
# bit-identical to paying full campaign cost.
set -euo pipefail

GO=${GO:-go}
TMP=$(mktemp -d /tmp/cachecheck.XXXXXX)
trap 'rm -rf "$TMP"' EXIT INT TERM

fail() {
    echo "cachecheck: FAIL: $*" >&2
    exit 1
}

N=400
SEED=9

echo "cachecheck: building fi"
$GO build -o "$TMP/fi" ./cmd/fi

"$TMP/fi" -dump-ir -program blackscholes >"$TMP/orig.tir"

run() { # compose-out cache-dir ir-file log
    "$TMP/fi" -ir "$3" -n "$N" -seed "$SEED" -progress=false \
        -cache-dir "$2" -compose-out "$1" >"$4" 2>>"$TMP/stderr.log"
}

echo "cachecheck: cold run (populates the cache)"
run "$TMP/cold.json" "$TMP/cache" "$TMP/orig.tir" "$TMP/cold.log"
grep -q '^cache: 0 hit(s), 2 miss(es)$' "$TMP/cold.log" \
    || fail "cold run: want 2 misses, got: $(grep '^cache:' "$TMP/cold.log")"

echo "cachecheck: warm re-run (all hits, byte-identical compose)"
run "$TMP/warm.json" "$TMP/cache" "$TMP/orig.tir" "$TMP/warm.log"
grep -q '^cache: 2 hit(s), 0 miss(es)$' "$TMP/warm.log" \
    || fail "warm run: want 2 hits, got: $(grep '^cache:' "$TMP/warm.log")"
cmp "$TMP/cold.json" "$TMP/warm.json" \
    || fail "warm compose output differs from cold"

echo "cachecheck: editing @cndf (register rename: hash-changing, semantics-preserving)"
awk '/^func @cndf\(/ { inside = 1 }
     inside { gsub(/%/, "%rn_") }
     inside && /^}/ { inside = 0 }
     { print }' "$TMP/orig.tir" >"$TMP/edited.tir"
cmp -s "$TMP/orig.tir" "$TMP/edited.tir" \
    && fail "edit did not change the module text"

echo "cachecheck: incremental re-run (only @cndf re-injects)"
run "$TMP/inc.json" "$TMP/cache" "$TMP/edited.tir" "$TMP/inc.log"
grep -q '^cache: 1 hit(s), 1 miss(es)$' "$TMP/inc.log" \
    || fail "incremental run: want 1 hit + 1 miss, got: $(grep '^cache:' "$TMP/inc.log")"
grep '^@cndf' "$TMP/inc.log" | grep -q 'MISS' \
    || fail "@cndf was not re-injected after its edit"
grep '^@main' "$TMP/inc.log" | grep -q 'HIT' \
    || fail "@main did not replay from the cache"

echo "cachecheck: from-scratch run of the edited module (fresh cache)"
run "$TMP/scratch.json" "$TMP/cache-fresh" "$TMP/edited.tir" "$TMP/scratch.log"
cmp "$TMP/inc.json" "$TMP/scratch.json" \
    || fail "incremental compose differs from from-scratch (bit-identity broken)"

echo "cachecheck: PASS"
