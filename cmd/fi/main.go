// Command fi runs an LLFI-style statistical fault-injection campaign:
// single bit flips in destination registers of random dynamic
// instructions, classified against the golden run.
//
// The campaign engine is resilient: engine failures classify individual
// trials as "errored" instead of aborting, Ctrl-C returns the completed
// prefix of the campaign, and -checkpoint/-resume persist completed
// trials to a JSONL log so an interrupted campaign picks up where it
// left off.
//
// Observability (see OBSERVABILITY.md): a live progress line is drawn
// on stderr while the campaign runs (-progress=false disables it),
// -metrics-out writes a metrics snapshot whose outcome counters
// reconcile exactly with the printed campaign tallies, -trace-out
// records a JSONL event trace, and -debug-addr serves expvar and pprof
// over HTTP for poking at a long campaign from another terminal.
//
// Usage:
//
//	fi -program pathfinder [-n 3000] [-seed 1] [-workers 4] [-per-instr]
//	   [-engine legacy|decoded] [-snapshot-interval 2048] [-prune-bits]
//	   [-checkpoint trials.jsonl] [-resume] [-retries 2] [-trial-timeout 30s]
//	   [-metrics-out metrics.json] [-trace-out trace.jsonl] [-debug-addr :6060]
//	fi -ir file.tir [...]
//	fi -remote http://localhost:8344 -program pathfinder [-shards 4]
//	   [-detach | -job job-xxxx] [-trials-out trials.jsonl]
//
// Exit codes follow the shell convention: 0 for a completed campaign,
// 1 for errors, and 128+signum (130 for SIGINT, 143 for SIGTERM) when
// a signal cancelled the campaign — partial results were reported, but
// distinguishably from both success and failure.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"trident/internal/bitlive"
	"trident/internal/cache"
	"trident/internal/fault"
	"trident/internal/hashutil"
	"trident/internal/interp"
	"trident/internal/ir"
	"trident/internal/progs"
	"trident/internal/server"
	"trident/internal/sigctx"
	"trident/internal/stats"
	"trident/internal/telemetry"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "fi:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("fi", flag.ContinueOnError)
	program := fs.String("program", "", "built-in benchmark name")
	irFile := fs.String("ir", "", "textual IR file")
	n := fs.Int("n", 3000, "number of injections")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	workers := fs.Int("workers", 4, "parallel injection workers")
	perInstr := fs.Bool("per-instr", false, "also report per-instruction SDC probabilities (uses -n per instruction / 10)")
	checkpoint := fs.String("checkpoint", "", "JSONL trial log: completed trials are persisted here and replayed on restart")
	cacheDir := fs.String("cache-dir", "", "run an incremental compositional campaign against a content-addressed per-function profile cache rooted here; only functions whose body hash changed since the cached run re-inject")
	composeOut := fs.String("compose-out", "", "with -cache-dir: write the composed per-function result as deterministic JSON here (cache-state independent, so runs can be byte-compared)")
	resume := fs.Bool("resume", false, "require an existing checkpoint (refuse to start from scratch); implies -checkpoint")
	retries := fs.Int("retries", 1, "retry attempts for trials failing with transient engine errors")
	trialTimeout := fs.Duration("trial-timeout", 0, "per-trial wall-clock watchdog on top of the instruction budget (0 = none)")
	snapInterval := fs.Uint64("snapshot-interval", 2048, "dynamic instructions between golden-run snapshots that trials resume from (0 = legacy full re-execution)")
	engineName := fs.String("engine", "legacy", "interpreter engine for the golden run and every trial: legacy or decoded")
	pruneBits := fs.Bool("prune-bits", false, "skip injections into statically provably-masked bits, recording them benign without execution; results are bit-identical to an unpruned campaign (exact reweighting, see DESIGN.md §5i)")
	stratify := fs.Bool("stratify", false, "stratified live-bit importance sampling: thin low-influence strata (noise, masked bits) deterministically and reweight executed trials by inverse inclusion probability; the weighted estimates stay unbiased at a fraction of the executed trials (see ANALYSIS.md)")
	stratifyAdaptive := fs.Bool("stratify-adaptive", false, "two-phase adaptive (Neyman-allocation) stratified sampling: a static-shape pilot over the first ~20% of the slot budget (provably-masked slots thinned at the rate floor) estimates per-stratum SDC rates, the remaining slots are thinned under the derived plan, and pilot trials fold into the weighted estimate at the pilot plan's 1/q — executed trials never exceed -n (see ANALYSIS.md); with -cache-dir, plans are seeded from cached per-function profiles and the pilot is skipped on hits")
	maskedRate := fs.Float64("stratify-masked-rate", bitlive.DefaultMaskedRate, "with -stratify: inclusion rate of the provably-masked stratum in the static plan, in (0, 1]")
	metricsOut := fs.String("metrics-out", "", "write a JSON metrics snapshot here on exit (see OBSERVABILITY.md)")
	traceOut := fs.String("trace-out", "", "write a JSONL event trace here (campaign spans, errored trials)")
	debugAddr := fs.String("debug-addr", "", "serve expvar and pprof on this HTTP address (e.g. :6060) for the campaign's lifetime")
	progress := fs.Bool("progress", true, "render a live campaign progress line on stderr")
	remote := fs.String("remote", "", "submit to a running fiserver at this base URL (e.g. http://localhost:8344) instead of running locally")
	jobID := fs.String("job", "", "with -remote: attach to this existing job instead of submitting a new one")
	detach := fs.Bool("detach", false, "with -remote: submit, print the job id, and exit without watching")
	shards := fs.Int("shards", 0, "with -remote: shard count for the server-side campaign (0 = server default)")
	trialsOut := fs.String("trials-out", "", "with -remote: write the result's per-trial records as JSONL here")
	dumpIR := fs.Bool("dump-ir", false, "print the selected module's canonical IR to stdout and exit (for scripted edit-and-rerun drills)")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if *dumpIR {
		m, err := loadModule(*program, *irFile)
		if err != nil {
			return 1, err
		}
		fmt.Print(ir.Print(m))
		return 0, nil
	}
	if *resume && *checkpoint == "" {
		return 1, fmt.Errorf("-resume requires -checkpoint")
	}
	if *composeOut != "" && *cacheDir == "" {
		return 1, fmt.Errorf("-compose-out requires -cache-dir")
	}
	if *cacheDir != "" && (*checkpoint != "" || *perInstr || *remote != "") {
		return 1, fmt.Errorf("-cache-dir is incompatible with -checkpoint, -per-instr and -remote")
	}
	if *stratify && (*cacheDir != "" || *perInstr) {
		return 1, fmt.Errorf("-stratify is incompatible with -cache-dir and -per-instr")
	}
	if *stratify && *stratifyAdaptive {
		return 1, fmt.Errorf("-stratify and -stratify-adaptive are mutually exclusive: an adaptive campaign derives its own plan")
	}
	if *stratifyAdaptive && *perInstr {
		return 1, fmt.Errorf("-stratify-adaptive is incompatible with -per-instr")
	}
	if !(*maskedRate > 0) || *maskedRate > 1 {
		return 1, fmt.Errorf("-stratify-masked-rate %v outside (0, 1]", *maskedRate)
	}
	if *maskedRate != bitlive.DefaultMaskedRate && !*stratify {
		return 1, fmt.Errorf("-stratify-masked-rate requires -stratify")
	}
	engine, err := interp.ParseEngine(*engineName)
	if err != nil {
		return 1, err
	}

	// Ctrl-C / SIGTERM cancels the campaign gracefully: in-flight trials
	// are abandoned, completed ones are reported (and checkpointed), and
	// the exit code records which signal it was (130/143).
	ctx, stop, fired := sigctx.WithSignals(context.Background())
	defer stop()

	if *remote != "" {
		if *perInstr {
			return 1, fmt.Errorf("-per-instr is not supported with -remote")
		}
		if *maskedRate != bitlive.DefaultMaskedRate {
			return 1, fmt.Errorf("-stratify-masked-rate is not supported with -remote (the server runs the default plan)")
		}
		var irText string
		if *irFile != "" {
			src, rerr := os.ReadFile(*irFile)
			if rerr != nil {
				return 1, rerr
			}
			irText = string(src)
		}
		return runRemote(ctx, fired, remoteOpts{
			base:      *remote,
			jobID:     *jobID,
			detach:    *detach,
			trialsOut: *trialsOut,
			progress:  *progress,
			req: &server.SubmitRequest{
				Program:          *program,
				IR:               irText,
				N:                *n,
				Seed:             *seed,
				Shards:           *shards,
				Workers:          *workers,
				Engine:           *engineName,
				SnapshotInterval: *snapInterval,
				MaxRetries:       *retries,
				TrialTimeoutMS:   trialTimeout.Milliseconds(),
				PruneBits:        *pruneBits,
				Stratify:         *stratify,
				StratifyAdaptive: *stratifyAdaptive,
			},
		})
	}

	reg := telemetry.Default
	var trace *telemetry.Trace
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			return 1, err
		}
		defer tf.Close()
		trace = telemetry.NewTrace(tf)
	}
	if *debugAddr != "" {
		dbg, err := telemetry.ServeDebug(*debugAddr, reg)
		if err != nil {
			return 1, err
		}
		// Graceful: an in-flight pprof scrape gets a second to finish.
		defer dbg.Shutdown(time.Second)
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars\n", dbg.Addr())
	}

	m, err := loadModule(*program, *irFile)
	if err != nil {
		return 1, err
	}
	// The progress meter and the campaign share stderr; the meter's
	// final line is flushed before any summary printing below.
	var meter *telemetry.ProgressMeter
	var onProgress func(fault.Progress)
	var lastProgress func() string
	if *progress {
		meter = telemetry.NewProgressMeter(os.Stderr, 0)
		var mu sync.Mutex
		var last fault.Progress
		onProgress = func(p fault.Progress) {
			mu.Lock()
			last = p
			mu.Unlock()
			meter.Update(p.String)
		}
		lastProgress = func() string {
			mu.Lock()
			defer mu.Unlock()
			return last.String()
		}
	}

	var plan *bitlive.Plan
	if *stratify {
		p := bitlive.MaskedRatePlan(*maskedRate)
		plan = &p
	}
	var adaptive *fault.AdaptiveConfig
	if *stratifyAdaptive {
		adaptive = &fault.AdaptiveConfig{}
	}
	inj, err := fault.New(m, fault.Options{
		Seed:             *seed,
		Workers:          *workers,
		MaxRetries:       *retries,
		TrialTimeout:     *trialTimeout,
		SnapshotInterval: *snapInterval,
		Metrics:          reg,
		Trace:            trace,
		OnProgress:       onProgress,
		Engine:           engine,
		PruneBits:        *pruneBits,
		Stratify:         plan,
		Adaptive:         adaptive,
	})
	if err != nil {
		return 1, err
	}
	fmt.Printf("golden run: %d dynamic instructions, activation space %d\n",
		inj.GoldenDynInstrs(), inj.ActivationSpace())
	if *pruneBits {
		fmt.Printf("bit-liveness pruning: %.1f%% of activation-weighted bits provably masked\n",
			inj.PrunedFraction()*100)
	}
	if *snapInterval > 0 {
		fmt.Printf("snapshot replay: %d golden snapshots (interval %d)\n",
			inj.Snapshots(), *snapInterval)
	}

	if *cacheDir != "" {
		return runCompositional(ctx, fired, compositionalOpts{
			inj: inj, module: m, n: *n, adaptive: *stratifyAdaptive,
			cacheDir: *cacheDir, composeOut: *composeOut, metricsOut: *metricsOut,
			reg: reg, trace: trace, meter: meter, lastProgress: lastProgress,
		})
	}

	start := time.Now()
	var res *fault.CampaignResult
	var sres *fault.StratifiedResult
	var ares *fault.AdaptiveResult
	switch {
	case *stratifyAdaptive:
		if *resume {
			// Adaptive checkpoints resume transparently (mid-pilot or
			// mid-main); -resume just adds the "refuse to start from
			// scratch" contract.
			if _, serr := os.Stat(*checkpoint); serr != nil {
				return 1, fmt.Errorf("-resume: %w", serr)
			}
		}
		if *checkpoint != "" {
			ares, err = inj.CampaignAdaptiveCheckpoint(ctx, *n, *checkpoint)
		} else {
			ares, err = inj.CampaignAdaptive(ctx, *n)
		}
		if ares != nil {
			sres = ares.StratifiedResult
			res = sres.CampaignResult
		}
	case *stratify:
		if *resume {
			// Stratified checkpoints resume transparently; -resume just
			// adds the "refuse to start from scratch" contract.
			if _, serr := os.Stat(*checkpoint); serr != nil {
				return 1, fmt.Errorf("-resume: %w", serr)
			}
		}
		if *checkpoint != "" {
			sres, err = inj.CampaignStratifiedCheckpoint(ctx, *n, *checkpoint)
		} else {
			sres, err = inj.CampaignStratified(ctx, *n)
		}
		if sres != nil {
			res = sres.CampaignResult
		}
	case *resume:
		res, err = inj.ResumeCampaign(ctx, *n, *checkpoint)
	case *checkpoint != "":
		res, err = inj.CampaignRandomCheckpoint(ctx, *n, *checkpoint)
	default:
		res, err = inj.CampaignRandom(ctx, *n)
	}
	meter.Final(lastProgress)
	cancelled := errors.Is(err, context.Canceled)
	if err != nil && !cancelled {
		return 1, err
	}

	// Snapshot metrics now, before any -per-instr extra campaigns run,
	// so the fi.outcome.* counters reconcile exactly with the campaign
	// tallies printed below.
	if *metricsOut != "" {
		if werr := writeMetrics(reg, *metricsOut); werr != nil {
			return 1, werr
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsOut)
	}

	if cancelled {
		fmt.Printf("\ncampaign cancelled after %.1fs: reporting the %d completed trials (of %d requested)\n",
			time.Since(start).Seconds(), res.N(), *n)
		if *checkpoint != "" {
			fmt.Printf("completed trials are checkpointed in %s; rerun with -resume to finish\n", *checkpoint)
		}
	}
	fmt.Printf("\n%d injections into %s:\n", res.N(), m.Name)
	for _, o := range fault.AllOutcomes {
		if o == fault.Errored && res.Counts[o] == 0 {
			continue
		}
		fmt.Printf("  %-9s %6d  (%.2f%%)\n", o, res.Counts[o], res.Rate(o)*100)
	}
	if p := res.PrunedN(); p > 0 {
		fmt.Printf("  %d of the benign trials were pruned statically (no execution)\n", p)
	}
	fmt.Printf("SDC probability: %.2f%% ± %.2f%% (95%% CI)\n",
		res.SDCProb()*100, stats.ProportionCI95(res.SDCProb(), res.ClassifiedN())*100)
	if sres != nil {
		if ares != nil {
			fmt.Printf("\nadaptive stratified sampling (pilot %d of %d slots, derived plan %s):\n",
				ares.PilotExecuted, ares.PilotSlots, sres.Plan)
		} else {
			fmt.Printf("\nstratified sampling (plan %s):\n", sres.Plan)
		}
		printStratumTable(sres)
		fmt.Printf("  %d of %d drawn slots executed\n", sres.ExecutedN(), *n)
		if ares != nil && ares.ExecutedN() > 0 {
			fmt.Printf("  pilot spent %.0f%% of the executed budget buying the plan\n",
				ares.PilotFraction()*100)
		}
		fmt.Printf("weighted SDC probability: %.2f%% ± %.2f%% (95%% CI, effective n %.0f)\n",
			sres.WeightedSDC()*100, sres.WeightedErrorBar95()*100, sres.EffectiveN())
	}
	if len(res.Errs) > 0 {
		fmt.Printf("\n%d trial(s) errored (engine failures, excluded from rates); first few:\n", len(res.Errs))
		for i, te := range res.Errs {
			if i == 5 {
				fmt.Printf("  ... and %d more\n", len(res.Errs)-i)
				break
			}
			fmt.Printf("  %v\n", &te)
		}
	}
	if cancelled {
		// Partial results were reported; the exit code says which signal
		// cut the campaign short (130 for SIGINT, 143 for SIGTERM).
		return sigctx.ExitCode(fired()), nil
	}

	if *perInstr {
		perN := *n / 10
		if perN < 10 {
			perN = 10
		}
		targets := inj.Targets()
		measured, err := inj.PerInstrSDC(ctx, targets, perN)
		if errors.Is(err, context.Canceled) {
			fmt.Printf("\nper-instruction campaign cancelled\n")
			return sigctx.ExitCode(fired()), nil
		}
		if err != nil {
			return 1, err
		}
		sort.Slice(targets, func(i, j int) bool {
			if measured[targets[i]] != measured[targets[j]] {
				return measured[targets[i]] > measured[targets[j]]
			}
			return targets[i].ID < targets[j].ID
		})
		fmt.Printf("\nper-instruction SDC probabilities (%d injections each):\n", perN)
		fmt.Printf("%-32s %-24s %10s\n", "instruction", "location", "SDC")
		for _, in := range targets {
			fmt.Printf("%-32s %-24s %9.1f%%\n", ir.FormatInstr(in), in.Pos(), measured[in]*100)
		}
	}
	return 0, nil
}

// printStratumTable renders the per-stratum breakdown in stratum
// priority order (fixed, so two runs of the same campaign are
// byte-comparable). Strata that drew no slots — typically because the
// module has no bits in them — render as explicit dash rows rather than
// disappearing, so a five-row table always has five rows.
func printStratumTable(sres *fault.StratifiedResult) {
	fmt.Printf("  %-9s %6s %9s %9s\n", "stratum", "rate", "slots", "executed")
	for _, ss := range sres.Summary() {
		if ss.Slots == 0 && ss.Executed == 0 {
			fmt.Printf("  %-9s %6.2f %9s %9s\n", ss.Stratum, ss.Rate, "-", "-")
			continue
		}
		fmt.Printf("  %-9s %6.2f %9d %9d\n", ss.Stratum, ss.Rate, ss.Slots, ss.Executed)
	}
}

type compositionalOpts struct {
	inj          *fault.Injector
	module       *ir.Module
	n            int
	adaptive     bool
	cacheDir     string
	composeOut   string
	metricsOut   string
	reg          *telemetry.Registry
	trace        *telemetry.Trace
	meter        *telemetry.ProgressMeter
	lastProgress func() string
}

// runCompositional executes the incremental campaign mode behind
// -cache-dir: per-function sections are replayed from the content-
// addressed profile cache when their body hash and golden-run stamp
// still match, and re-injected (then cached) otherwise. With
// -stratify-adaptive, each section runs the two-phase adaptive campaign
// instead — and on a cache hit the plan is seeded from the cached
// per-stratum tallies, skipping the pilot entirely.
func runCompositional(ctx context.Context, fired func() os.Signal, o compositionalOpts) (int, error) {
	store, err := cache.Open(o.cacheDir, cache.Options{Metrics: o.reg, Trace: o.trace})
	if err != nil {
		return 1, err
	}
	start := time.Now()
	var res *fault.CompositionalResult
	var ares *fault.AdaptiveCompositionalResult
	if o.adaptive {
		ares, err = o.inj.CampaignAdaptiveCompositional(ctx, o.n, store)
		if ares != nil {
			res = ares.CompositionalResult
		}
	} else {
		res, err = o.inj.CampaignCompositional(ctx, o.n, store)
	}
	o.meter.Final(o.lastProgress)
	cancelled := errors.Is(err, context.Canceled)
	if err != nil && !cancelled {
		return 1, err
	}
	if o.metricsOut != "" {
		if werr := writeMetrics(o.reg, o.metricsOut); werr != nil {
			return 1, werr
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s\n", o.metricsOut)
	}
	if cancelled {
		fmt.Printf("\ncampaign cancelled after %.1fs: reporting the %d completed trials (of %d requested); finished sections are cached\n",
			time.Since(start).Seconds(), res.N(), o.n)
	}

	mode := "compositional"
	if o.adaptive {
		mode = "adaptive compositional"
	}
	fmt.Printf("\n%s campaign over %s (%d trials, cache %s):\n",
		mode, o.module.Name, res.N(), o.cacheDir)
	fmt.Printf("%-16s %-18s %10s %7s  %s\n", "function", "body hash", "weight", "trials", "cache")
	for i := range res.Funcs {
		fc := &res.Funcs[i]
		state := "MISS (injected)"
		switch {
		case o.adaptive && fc.Seeded:
			state = "SEED (plan from plain profile, no pilot)"
		case fc.Cached:
			state = "HIT  (replayed)"
		case o.adaptive:
			state = fmt.Sprintf("MISS (pilot %d + main)", fc.PilotN)
		}
		fmt.Printf("@%-15s %-18s %10d %7d  %s\n",
			fc.Name, hashutil.Hex(fc.BodyHash), fc.Weight, len(fc.Records), state)
		if o.adaptive && fc.Plan != "" {
			fmt.Printf("  %-15s plan %s\n", "", fc.Plan)
		}
	}
	if o.adaptive {
		fmt.Printf("cache: %d hit(s), %d miss(es); %d plan(s) seeded from plain profiles, %d pilot trials executed\n",
			res.Hits, res.Misses, ares.SeededFuncs, ares.PilotExecuted)
	} else {
		fmt.Printf("cache: %d hit(s), %d miss(es)\n", res.Hits, res.Misses)
	}
	fmt.Printf("\ncomposed outcome rates:\n")
	for _, o2 := range fault.AllOutcomes {
		name := o2.String()
		if cnt, ok := res.Composed.Counts[name]; ok && (o2 != fault.Errored || cnt > 0) {
			fmt.Printf("  %-9s %6d  (%.2f%%)\n", name, cnt, res.Composed.Rates[name]*100)
		}
	}
	fmt.Printf("SDC probability: %.2f%% ± %.2f%% (95%% CI, Wilson from merged tallies)\n",
		res.Composed.SDC*100, res.Composed.ErrorBar95()*100)

	if o.composeOut != "" && !cancelled {
		if werr := writeCompose(o.composeOut, o.module.Name, res); werr != nil {
			return 1, werr
		}
		fmt.Fprintf(os.Stderr, "composed result written to %s\n", o.composeOut)
	}
	if cancelled {
		return sigctx.ExitCode(fired()), nil
	}
	return 0, nil
}

// composeFileFunc is one function's section in the -compose-out JSON.
// Cache hit/miss state is deliberately absent: the file depends only on
// the campaign's inputs and outcomes, so an incremental run and a
// from-scratch run of the same campaign produce byte-identical files —
// the property scripts/cachecheck.sh asserts with cmp.
type composeFileFunc struct {
	Func     string           `json:"func"`
	BodyHash string           `json:"body_hash"`
	Weight   uint64           `json:"weight"`
	N        int              `json:"n"`
	Counts   map[string]int   `json:"counts"`
	Trials   []cache.TrialRec `json:"trials"`
}

type composeFile struct {
	Module     string             `json:"module"`
	Trials     int                `json:"trials"`
	Classified int                `json:"classified"`
	Funcs      []composeFileFunc  `json:"funcs"`
	Counts     map[string]int     `json:"counts"`
	Rates      map[string]float64 `json:"rates"`
	SDC        float64            `json:"sdc"`
	SDCLo      float64            `json:"sdc_lo"`
	SDCHi      float64            `json:"sdc_hi"`
}

func writeCompose(path, module string, res *fault.CompositionalResult) error {
	out := composeFile{
		Module:     module,
		Trials:     res.Composed.Trials,
		Classified: res.Composed.Classified,
		Counts:     res.Composed.Counts,
		Rates:      res.Composed.Rates,
		SDC:        res.Composed.SDC,
		SDCLo:      res.Composed.SDCLo,
		SDCHi:      res.Composed.SDCHi,
	}
	for i := range res.Funcs {
		fc := &res.Funcs[i]
		out.Funcs = append(out.Funcs, composeFileFunc{
			Func:     fc.Name,
			BodyHash: hashutil.Hex(fc.BodyHash),
			Weight:   fc.Weight,
			N:        fc.N,
			Counts:   outcomeNames(fc.Counts),
			Trials:   fc.Records,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// outcomeNames converts an Outcome-keyed tally to string keys (JSON maps
// sort keys, keeping the file deterministic).
func outcomeNames(counts map[fault.Outcome]int) map[string]int {
	out := make(map[string]int, len(counts))
	for o, n := range counts {
		out[o.String()] = n
	}
	return out
}

// writeMetrics dumps a registry snapshot as indented JSON at path.
func writeMetrics(reg *telemetry.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadModule(program, irFile string) (*ir.Module, error) {
	switch {
	case program != "" && irFile != "":
		return nil, fmt.Errorf("use either -program or -ir, not both")
	case program != "":
		p, err := progs.ByName(program)
		if err != nil {
			return nil, err
		}
		return p.Build(), nil
	case irFile != "":
		src, err := os.ReadFile(irFile)
		if err != nil {
			return nil, err
		}
		return ir.Parse(string(src))
	default:
		return nil, fmt.Errorf("one of -program or -ir is required")
	}
}
