// Command fi runs an LLFI-style statistical fault-injection campaign:
// single bit flips in destination registers of random dynamic
// instructions, classified against the golden run.
//
// Usage:
//
//	fi -program pathfinder [-n 3000] [-seed 1] [-workers 4] [-per-instr]
//	fi -ir file.tir [...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"trident/internal/fault"
	"trident/internal/ir"
	"trident/internal/progs"
	"trident/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fi:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fi", flag.ContinueOnError)
	program := fs.String("program", "", "built-in benchmark name")
	irFile := fs.String("ir", "", "textual IR file")
	n := fs.Int("n", 3000, "number of injections")
	seed := fs.Uint64("seed", 1, "deterministic seed")
	workers := fs.Int("workers", 4, "parallel injection workers")
	perInstr := fs.Bool("per-instr", false, "also report per-instruction SDC probabilities (uses -n per instruction / 10)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := loadModule(*program, *irFile)
	if err != nil {
		return err
	}
	inj, err := fault.New(m, fault.Options{Seed: *seed, Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Printf("golden run: %d dynamic instructions, activation space %d\n",
		inj.GoldenDynInstrs(), inj.ActivationSpace())

	res, err := inj.CampaignRandom(*n)
	if err != nil {
		return err
	}
	fmt.Printf("\n%d injections into %s:\n", res.N(), m.Name)
	for _, o := range []fault.Outcome{fault.Benign, fault.SDC, fault.Crash, fault.Hang, fault.Detected} {
		fmt.Printf("  %-9s %6d  (%.2f%%)\n", o, res.Counts[o], res.Rate(o)*100)
	}
	fmt.Printf("SDC probability: %.2f%% ± %.2f%% (95%% CI)\n",
		res.SDCProb()*100, stats.ProportionCI95(res.SDCProb(), res.N())*100)

	if *perInstr {
		perN := *n / 10
		if perN < 10 {
			perN = 10
		}
		targets := inj.Targets()
		measured, err := inj.PerInstrSDC(targets, perN)
		if err != nil {
			return err
		}
		sort.Slice(targets, func(i, j int) bool {
			if measured[targets[i]] != measured[targets[j]] {
				return measured[targets[i]] > measured[targets[j]]
			}
			return targets[i].ID < targets[j].ID
		})
		fmt.Printf("\nper-instruction SDC probabilities (%d injections each):\n", perN)
		fmt.Printf("%-32s %-24s %10s\n", "instruction", "location", "SDC")
		for _, in := range targets {
			fmt.Printf("%-32s %-24s %9.1f%%\n", ir.FormatInstr(in), in.Pos(), measured[in]*100)
		}
	}
	return nil
}

func loadModule(program, irFile string) (*ir.Module, error) {
	switch {
	case program != "" && irFile != "":
		return nil, fmt.Errorf("use either -program or -ir, not both")
	case program != "":
		p, err := progs.ByName(program)
		if err != nil {
			return nil, err
		}
		return p.Build(), nil
	case irFile != "":
		src, err := os.ReadFile(irFile)
		if err != nil {
			return nil, err
		}
		return ir.Parse(string(src))
	default:
		return nil, fmt.Errorf("one of -program or -ir is required")
	}
}
