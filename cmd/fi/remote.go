// This file is fi's client mode for the campaign server (cmd/fiserver):
// -remote submits the campaign over HTTP instead of running it in
// process, follows the job's JSONL event stream with the same live
// progress meter as a local run, and prints the same summary from the
// returned result. -trials-out dumps the per-trial records as JSONL —
// the currency scripts/servercheck.sh compares byte-for-byte between
// server runs and clean runs.

package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"trident/internal/server"
	"trident/internal/sigctx"
	"trident/internal/telemetry"
)

// remoteOpts carries the flags relevant to a -remote invocation.
type remoteOpts struct {
	base      string // server base URL
	jobID     string // attach to an existing job instead of submitting
	detach    bool   // submit, print the job ID, exit
	trialsOut string // write per-trial JSONL here
	progress  bool
	req       *server.SubmitRequest
}

// runRemote drives one remote campaign. The exit-code contract matches
// local runs: 0 for a complete campaign, 1 for errors, 130/143 when a
// signal interrupted the watch (a signal during a run we submitted also
// cancels the job server-side; attaching with -job never cancels).
func runRemote(ctx context.Context, fired func() os.Signal, opts remoteOpts) (int, error) {
	base := strings.TrimRight(opts.base, "/")
	client := &http.Client{}
	id := opts.jobID
	submitted := false
	if id == "" {
		var err error
		if id, err = submitJob(ctx, client, base, opts.req); err != nil {
			return 1, err
		}
		submitted = true
		fmt.Printf("submitted job %s to %s\n", id, base)
		if opts.detach {
			fmt.Printf("watch it with: fi -remote %s -job %s\n", base, id)
			return 0, nil
		}
	}

	err := watchJob(ctx, client, base, id, opts.progress)
	if sig := fired(); sig != nil {
		if submitted {
			// Mirror local Ctrl-C semantics: our campaign, so cancel it.
			cancelJob(client, base, id)
			fmt.Fprintf(os.Stderr, "\nfi: %v received, cancelled job %s\n", sig, id)
		} else {
			fmt.Fprintf(os.Stderr, "\nfi: %v received, detaching from job %s (still running server-side)\n", sig, id)
			return sigctx.ExitCode(sig), nil
		}
	} else if err != nil {
		return 1, err
	}

	res, err := fetchResult(client, base, id)
	if err != nil {
		return 1, err
	}
	printRemoteResult(res)
	if opts.trialsOut != "" {
		if err := writeTrials(opts.trialsOut, res.Trials); err != nil {
			return 1, err
		}
		fmt.Fprintf(os.Stderr, "per-trial records written to %s\n", opts.trialsOut)
	}
	if sig := fired(); sig != nil {
		return sigctx.ExitCode(sig), nil
	}
	switch server.JobState(res.State) {
	case server.JobDone:
		return 0, nil
	default:
		return 1, fmt.Errorf("job %s finished %s", id, res.State)
	}
}

func submitJob(ctx context.Context, client *http.Client, base string, req *server.SubmitRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return "", fmt.Errorf("submitting to %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", apiError("submit", resp)
	}
	var sr server.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return "", err
	}
	return sr.ID, nil
}

// watchJob follows the event stream until the job is terminal. It
// returns nil on a terminal event, or the transport error (a cancelled
// ctx surfaces here when a signal fires).
func watchJob(ctx context.Context, client *http.Client, base, id string, progress bool) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError("events", resp)
	}
	var meter *telemetry.ProgressMeter
	if progress {
		meter = telemetry.NewProgressMeter(os.Stderr, 0)
	}
	var lastLine string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev server.Event
		if json.Unmarshal(sc.Bytes(), &ev) != nil {
			continue
		}
		if ev.Type == "state" {
			continue
		}
		lastLine = eventLine(ev)
		if meter != nil {
			meter.Update(func() string { return lastLine })
		}
		if ev.Type == "done" {
			meter.Final(func() string { return lastLine })
			return nil
		}
	}
	meter.Final(func() string { return lastLine })
	if err := sc.Err(); err != nil {
		return fmt.Errorf("event stream: %w", err)
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("event stream for job %s ended before the job finished (server draining?)", id)
}

// eventLine renders one progress event like the local campaign meter.
func eventLine(ev server.Event) string {
	var b strings.Builder
	pct := 0.0
	if ev.Total > 0 {
		pct = 100 * float64(ev.Done) / float64(ev.Total)
	}
	fmt.Fprintf(&b, "%s %d/%d (%.1f%%)", ev.State, ev.Done, ev.Total, pct)
	names := make([]string, 0, len(ev.Counts))
	for name := range ev.Counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, " %s=%d", name, ev.Counts[name])
	}
	if ev.ElapsedMS > 0 {
		fmt.Fprintf(&b, " %.1fs", float64(ev.ElapsedMS)/1000)
	}
	return b.String()
}

func cancelJob(client *http.Client, base, id string) {
	// Best-effort: the watch context is already cancelled, use a fresh one.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, base+"/jobs/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := client.Do(hreq); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// fetchResult polls for the job's result: after a cancel or a drain the
// terminal state (and its result) can land moments after the event
// stream ends.
func fetchResult(client *http.Client, base, id string) (*server.Result, error) {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		if attempt > 0 {
			time.Sleep(250 * time.Millisecond)
		}
		resp, err := client.Get(base + "/jobs/" + id + "/result")
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusOK {
			var res server.Result
			err := json.NewDecoder(resp.Body).Decode(&res)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			return &res, nil
		}
		lastErr = apiError("result", resp)
		resp.Body.Close()
	}
	return nil, lastErr
}

func printRemoteResult(res *server.Result) {
	fmt.Printf("\njob %s: %s, %d trials", res.ID, res.State, len(res.Trials))
	if res.Missing > 0 {
		fmt.Printf(" (%d of %d missing)", res.Missing, res.N)
	}
	fmt.Println()
	names := make([]string, 0, len(res.Counts))
	for name := range res.Counts {
		names = append(names, name)
	}
	sort.Strings(names)
	total := len(res.Trials)
	for _, name := range names {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(res.Counts[name]) / float64(total)
		}
		fmt.Printf("  %-9s %6d  (%.2f%%)\n", name, res.Counts[name], pct)
	}
	fmt.Printf("SDC probability: %.2f%% ± %.2f%% (95%% CI)\n", res.SDCProb*100, res.ErrorBar95*100)
	if res.Stratified {
		if res.Adaptive {
			fmt.Printf("adaptive: %d of %d drawn slots executed (%d pilot trials)\n",
				res.ExecutedN, res.N, res.PilotExecuted)
		} else {
			fmt.Printf("stratified: %d of %d drawn slots executed\n", res.ExecutedN, res.N)
		}
		fmt.Printf("weighted SDC probability: %.2f%% ± %.2f%% (95%% CI, effective n %.0f)\n",
			res.WeightedSDC*100, res.WeightedErrorBar95*100, res.EffectiveN)
	}
	for _, ss := range res.FailedShards {
		fmt.Printf("shard %d failed after %d attempts: %s\n", ss.Shard, ss.Attempts, ss.Error)
	}
}

// writeTrials dumps per-trial records as JSONL, one record per line in
// sampling order — deterministic, so two complete runs of the same
// campaign produce byte-identical files.
func writeTrials(path string, trials []server.TrialRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, tr := range trials {
		if err := enc.Encode(tr); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func apiError(op string, resp *http.Response) error {
	var re server.RequestError
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&re) == nil && re.Msg != "" {
		return fmt.Errorf("%s: %s (HTTP %d)", op, re.Msg, resp.StatusCode)
	}
	return fmt.Errorf("%s: HTTP %d", op, resp.StatusCode)
}
