// Command trident analyzes a program with the TRIDENT model: it profiles
// one execution and prints the predicted overall SDC probability and the
// most SDC-prone instructions, without any fault injection — the paper's
// Figure 1b workflow.
//
// Usage:
//
//	trident -program pathfinder [-top 15] [-model trident|fs+fc|fs] [-samples N]
//	trident -ir file.tir [...]
//
// Programs come from the built-in benchmark registry (-program) or from a
// textual IR file (-ir).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"trident/internal/core"
	"trident/internal/ir"
	"trident/internal/profile"
	"trident/internal/progs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trident:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trident", flag.ContinueOnError)
	program := fs.String("program", "", "built-in benchmark name ("+listNames()+")")
	irFile := fs.String("ir", "", "textual IR file to analyze instead of a benchmark")
	top := fs.Int("top", 15, "number of most SDC-prone instructions to list")
	modelName := fs.String("model", "trident", "model variant: trident, fs+fc, fs")
	samples := fs.Int("samples", 0, "sampled dynamic instructions for the overall estimate (0 = exact)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := loadModule(*program, *irFile)
	if err != nil {
		return err
	}

	var cfg core.Config
	switch *modelName {
	case "trident":
		cfg = core.TridentConfig()
	case "fs+fc":
		cfg = core.FSFCConfig()
	case "fs":
		cfg = core.FSOnlyConfig()
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}

	fmt.Printf("profiling %s...\n", m.Name)
	prof, err := profile.Collect(m, profile.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("  %d static instructions, %d dynamic, %d bytes peak memory\n",
		m.NumInstrs(), prof.Golden.DynInstrs, prof.PeakMemBytes)
	fmt.Printf("  memory dependence: %d dynamic deps pruned to %d static edges (%.2f%%)\n",
		prof.DynMemDeps, prof.NumStaticMemEdges(), prof.PruningRatio()*100)

	model := core.New(prof, cfg)
	overall := model.OverallSDC(*samples, 1)
	fmt.Printf("\noverall SDC probability (%s): %.2f%%\n", model, overall.SDC*100)

	type ranked struct {
		in  *ir.Instr
		sdc float64
	}
	var rows []ranked
	m.Instrs(func(in *ir.Instr) {
		if in.HasResult() && prof.ExecCount[in] > 0 {
			rows = append(rows, ranked{in, model.InstrSDC(in)})
		}
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].sdc != rows[j].sdc {
			return rows[i].sdc > rows[j].sdc
		}
		return rows[i].in.ID < rows[j].in.ID
	})
	if *top > len(rows) {
		*top = len(rows)
	}
	fmt.Printf("\ntop %d SDC-prone instructions:\n", *top)
	fmt.Printf("%-32s %-24s %10s %10s\n", "instruction", "location", "SDC", "execs")
	for _, r := range rows[:*top] {
		fmt.Printf("%-32s %-24s %9.2f%% %10d\n",
			ir.FormatInstr(r.in), r.in.Pos(), r.sdc*100, prof.ExecCount[r.in])
	}
	return nil
}

func loadModule(program, irFile string) (*ir.Module, error) {
	switch {
	case program != "" && irFile != "":
		return nil, fmt.Errorf("use either -program or -ir, not both")
	case program != "":
		p, err := progs.ByName(program)
		if err != nil {
			return nil, err
		}
		return p.Build(), nil
	case irFile != "":
		src, err := os.ReadFile(irFile)
		if err != nil {
			return nil, err
		}
		return ir.Parse(string(src))
	default:
		return nil, fmt.Errorf("one of -program or -ir is required")
	}
}

func listNames() string {
	names := progs.Names()
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
