// Command crosscheck sweeps a program corpus through the differential
// oracle and the metamorphic invariant suite (internal/crosscheck): every
// program runs on both the production interpreter and the naive
// reference evaluator, which must agree on every observable (outcome,
// trap, output, dynamic counts, peak memory, full register-write trace);
// every program must survive the parser round trip; and, with
// -invariants, the TRIDENT model stack must satisfy its probability
// ranges, sub-model ordering, and protection-pass guarantees, with
// checkpointed campaigns resuming bit-identically.
//
// The corpus is -n randomly generated programs (seeds -seed, -seed+1,
// ...) plus, unless -kernels=false, the 11 paper benchmark kernels. A
// sweep that finds nothing prints a one-line summary and exits 0; any
// divergence prints a triage report (mismatches grouped by check kind,
// then details) and exits 1.
//
// Usage:
//
//	crosscheck [-n 500] [-seed 1] [-kernels] [-invariants]
//	           [-protect-trials 32] [-checkpoint-dir DIR]
//	           [-engine legacy|decoded] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"trident/internal/crosscheck"
	"trident/internal/interp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crosscheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("crosscheck", flag.ContinueOnError)
	n := fs.Int("n", 500, "number of random programs to generate")
	seed := fs.Uint64("seed", 1, "first random-program seed (also seeds the invariant checks)")
	kernels := fs.Bool("kernels", true, "include the 11 paper benchmark kernels")
	invariants := fs.Bool("invariants", false, "check model and protection invariants (slower)")
	protectTrials := fs.Int("protect-trials", 0, "injection trials per program in the protection invariant (0 = default)")
	checkpointDir := fs.String("checkpoint-dir", "", "scratch directory: enables the checkpoint-resume bit-identity check")
	engineName := fs.String("engine", "legacy", "engine driving the campaign-level checks: legacy or decoded (the per-program oracle always sweeps every engine)")
	verbose := fs.Bool("v", false, "print each program as it is checked")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := interp.ParseEngine(*engineName)
	if err != nil {
		return err
	}

	cfg := crosscheck.Config{
		RandomPrograms: *n,
		Seed:           *seed,
		Kernels:        *kernels,
		Invariants:     *invariants,
		ProtectTrials:  *protectTrials,
		CheckpointDir:  *checkpointDir,
		Engine:         engine,
	}
	if *verbose {
		cfg.Progress = func(name string) { fmt.Fprintln(os.Stderr, "checking", name) }
	}

	rep, err := crosscheck.RunCorpus(cfg)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	if !rep.Clean() {
		os.Exit(1)
	}
	return nil
}
