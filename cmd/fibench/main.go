// Command fibench compares the three fault-injection execution paths —
// the legacy engine that re-interprets every trial from instruction zero,
// the snapshot-replay engine that resumes each trial from the nearest
// golden-run snapshot, and the decoded engine that additionally executes
// AOT-lowered instruction streams with pooled frames — on identical
// campaigns, verifies the results are bit-identical, and records the
// timings as JSON (BENCH_fi.json).
//
// It also measures the cost of the telemetry layer: each snapshot
// campaign is re-run with a live metrics registry, JSONL trace, and
// progress callback attached, and the instrumented-vs-bare ratio is
// reported as telemetry_overhead. -max-overhead turns that measurement
// into a gate (make check uses 0.03, the ≤3% budget OBSERVABILITY.md
// promises).
//
// Usage:
//
//	fibench [-programs pathfinder,nw,sad,rgb2gray,nibblepack,boxblur]
//	        [-n 400] [-seed 7] [-workers 4]
//	        [-interval 2048] [-repeats 1] [-max-overhead 0]
//	        [-min-decoded-speedup 0] [-min-pruned-ci-speedup 0]
//	        [-min-strat-ci-shrink 0] [-min-adapt-ci-shrink 0]
//	        [-out BENCH_fi.json]
//
// -out "-" writes to stdout. -repeats N times every campaign N times and
// keeps the fastest run, damping scheduler noise on loaded machines. The
// run fails if any program's campaigns diverge between the paths, if
// -max-overhead is positive and exceeded, or if -min-decoded-speedup is
// positive and the geometric-mean decoded-vs-snapshot speedup falls
// below it.
//
// Each program additionally runs the campaign stratified under the
// default bitlive plan (same slot stream, masked stratum thinned,
// inverse-probability reweighting). The published shrink ratio compares
// the weighted Wilson CI half-width against the plain Wilson half-width
// at the same executed-trial budget; -min-strat-ci-shrink gates it the
// same way the pruned-CI gate works (at least -min-strat-kernels
// programs must clear the floor).
//
// Each program also runs the campaign adaptively (-stratify-adaptive
// semantics: a pilot prefix buys a Neyman plan, the remainder is
// thinned under it, pilot trials fold into the weighted estimate). The
// adapt_ci_shrink column is the same equal-executed-budget ratio for
// the pilot-derived plan, and pilot_fraction the pilot's share of the
// executed budget. -min-adapt-ci-shrink gates it, counting only
// kernels where the adaptive shrink also matches or beats the static
// plan's — the floor the adaptive machinery must never fall below,
// since the static shape is a member of the plan family it optimizes
// over.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"trident/internal/bitlive"
	"trident/internal/fault"
	"trident/internal/interp"
	"trident/internal/progs"
	"trident/internal/stats"
	"trident/internal/telemetry"
)

// result is one program's measurement, serialized into BENCH_fi.json.
type result struct {
	Program       string  `json:"program"`
	N             int     `json:"n"`
	Seed          uint64  `json:"seed"`
	Workers       int     `json:"workers"`
	GoldenDyn     uint64  `json:"golden_dyn_instrs"`
	Interval      uint64  `json:"snapshot_interval"`
	Snapshots     int     `json:"snapshots"`
	SnapshotSetup float64 `json:"snapshot_setup_ms"`
	LegacyMs      float64 `json:"legacy_ms"`
	SnapshotMs    float64 `json:"snapshot_ms"`
	DecodedMs     float64 `json:"decoded_ms"`
	// OverheadBaseMs and InstrumentedMs are the single-worker pair
	// behind the overhead measurement: the same snapshot campaign bare
	// and with every observability sink attached. Single-threaded runs
	// sidestep worker-pool scheduling jitter, which at campaign scale
	// is larger than the signal.
	OverheadBaseMs float64 `json:"overhead_base_ms"`
	InstrumentedMs float64 `json:"instrumented_ms"`
	Speedup        float64 `json:"speedup"`
	// DecodedSpeedup is the decoded engine's gain over the snapshot
	// engine on the same snapshot-replay campaign: snapshot_ms/decoded_ms.
	DecodedSpeedup float64 `json:"decoded_speedup"`
	// TelemetryOverhead is the fractional slowdown with metrics,
	// tracing, and a progress callback all attached:
	// instrumented_ms/overhead_base_ms - 1. Negative values are
	// measurement noise.
	TelemetryOverhead float64 `json:"telemetry_overhead"`
	Identical         bool    `json:"identical"`
	TrialsPerSecL     float64 `json:"legacy_trials_per_sec"`
	TrialsPerSecS     float64 `json:"snapshot_trials_per_sec"`
	TrialsPerSecD     float64 `json:"decoded_trials_per_sec"`
	// PrunedMs times the decoded campaign re-run with bit-liveness
	// pruning (-prune-bits); its transcript participates in the identity
	// check, so the timing is only ever published for a bit-identical
	// result. BitsPrunedPct is the activation-weighted share of the
	// sampling space the analysis proves masked, and PrunedCISpeedup =
	// 1/(1-pct/100) is the executed-trial multiplier at equal Wilson CI
	// width — the honest speedup metric, independent of how cheap the
	// skipped trials happened to be. A fully-masked workload (pct == 100,
	// nothing executes) reports 0: the multiplier is undefined there, and
	// +Inf would make encoding/json reject the whole results file.
	PrunedMs        float64 `json:"pruned_ms"`
	TrialsPerSecP   float64 `json:"pruned_trials_per_sec"`
	BitsPrunedPct   float64 `json:"bits_pruned_pct"`
	PrunedCISpeedup float64 `json:"pruned_ci_speedup"`
	// StratExecuted of N drawn slots survived the default stratification
	// plan's thinning; StratWeightedSDC is the Horvitz-Thompson SDC
	// estimate over all N slots and StratCIHalf its weighted Wilson 95%
	// half-width at effective sample size StratEffN. StratEqualExecCIHalf
	// is the plain Wilson half-width a uniform campaign would report for
	// the same executed budget, and StratCIShrink their ratio — above 1,
	// stratification buys a tighter interval per executed trial.
	StratExecuted        int     `json:"strat_executed"`
	StratWeightedSDC     float64 `json:"strat_weighted_sdc"`
	StratCIHalf          float64 `json:"strat_ci_half"`
	StratEqualExecCIHalf float64 `json:"strat_equal_exec_ci_half"`
	StratCIShrink        float64 `json:"strat_ci_shrink"`
	StratEffN            float64 `json:"strat_eff_n"`
	// AdaptExecuted of N drawn slots survived the adaptive campaign
	// (pilot trials included); PilotExecuted of them were pilot trials
	// and PilotFraction is their share of the executed budget — the
	// overhead spent buying the plan. AdaptCIShrink mirrors
	// StratCIShrink for the pilot-derived plan; the -min-adapt-ci-shrink
	// gate requires it to match or beat the static plan's shrink.
	AdaptExecuted        int     `json:"adapt_executed"`
	PilotExecuted        int     `json:"pilot_executed"`
	PilotFraction        float64 `json:"pilot_fraction"`
	AdaptWeightedSDC     float64 `json:"adapt_weighted_sdc"`
	AdaptCIHalf          float64 `json:"adapt_ci_half"`
	AdaptEqualExecCIHalf float64 `json:"adapt_equal_exec_ci_half"`
	AdaptCIShrink        float64 `json:"adapt_ci_shrink"`
	AdaptEffN            float64 `json:"adapt_eff_n"`
	AdaptPlan            string  `json:"adapt_plan"`
	OutcomeSummary       string  `json:"outcomes"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fibench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fibench", flag.ContinueOnError)
	programs := fs.String("programs", "pathfinder,nw,sad,rgb2gray,nibblepack,boxblur", "comma-separated benchmark names")
	n := fs.Int("n", 400, "injections per campaign")
	seed := fs.Uint64("seed", 7, "deterministic seed (same for both paths)")
	workers := fs.Int("workers", 4, "parallel injection workers")
	interval := fs.Uint64("interval", 2048, "snapshot interval in dynamic instructions")
	repeats := fs.Int("repeats", 1, "measure each campaign this many times and keep the fastest")
	maxOverhead := fs.Float64("max-overhead", 0, "fail if telemetry overhead exceeds this fraction (0 disables the gate)")
	minDecoded := fs.Float64("min-decoded-speedup", 0, "fail if the geomean decoded-vs-snapshot speedup falls below this factor (0 disables the gate)")
	minPrunedCI := fs.Float64("min-pruned-ci-speedup", 0, "fail unless at least -min-pruned-kernels programs reach this pruned equal-CI speedup (0 disables the gate)")
	minPrunedKernels := fs.Int("min-pruned-kernels", 3, "with -min-pruned-ci-speedup: how many programs must clear the floor")
	minStratShrink := fs.Float64("min-strat-ci-shrink", 0, "fail unless at least -min-strat-kernels programs reach this stratified CI shrink at equal executed trials (0 disables the gate)")
	minStratKernels := fs.Int("min-strat-kernels", 3, "with -min-strat-ci-shrink: how many programs must clear the floor")
	minAdaptShrink := fs.Float64("min-adapt-ci-shrink", 0, "fail unless at least -min-adapt-kernels programs reach this adaptive CI shrink at equal executed trials while matching or beating the static plan's shrink (0 disables the gate)")
	minAdaptKernels := fs.Int("min-adapt-kernels", 3, "with -min-adapt-ci-shrink: how many programs must clear the floor")
	out := fs.String("out", "BENCH_fi.json", "output JSON path, or - for stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval == 0 {
		return fmt.Errorf("-interval must be positive (0 would benchmark the legacy path against itself)")
	}
	if *repeats < 1 {
		return fmt.Errorf("-repeats must be at least 1")
	}

	var results []result
	for _, name := range strings.Split(*programs, ",") {
		name = strings.TrimSpace(name)
		r, err := benchProgram(name, *n, *seed, *workers, *interval, *repeats)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(os.Stderr,
			"%-12s golden=%-6d snapshots=%-3d legacy=%7.1fms snapshot=%7.1fms decoded=%7.1fms pruned=%7.1fms speedup=%.2fx decoded-speedup=%.2fx pruned=%.1f%% ci-speedup=%.2fx strat=%d/%d shrink=%.3fx adapt=%d/%d shrink=%.3fx pilot=%.0f%% telemetry=%+.1f%% identical=%v\n",
			r.Program, r.GoldenDyn, r.Snapshots, r.LegacyMs, r.SnapshotMs, r.DecodedMs, r.PrunedMs,
			r.Speedup, r.DecodedSpeedup, r.BitsPrunedPct, r.PrunedCISpeedup,
			r.StratExecuted, r.N, r.StratCIShrink,
			r.AdaptExecuted, r.N, r.AdaptCIShrink, r.PilotFraction*100,
			r.TelemetryOverhead*100, r.Identical)
		if !r.Identical {
			return fmt.Errorf("%s: campaigns diverged between execution paths", name)
		}
		results = append(results, r)
	}

	// The decoded gate uses the geometric mean so every kernel weighs
	// equally; an arithmetic mean would let one long kernel mask a
	// regression on the short ones.
	logSum := 0.0
	for _, r := range results {
		logSum += math.Log(r.DecodedSpeedup)
	}
	geomean := math.Exp(logSum / float64(len(results)))
	fmt.Fprintf(os.Stderr, "decoded speedup geomean: %.2fx\n", geomean)
	if *minDecoded > 0 && geomean < *minDecoded {
		return fmt.Errorf("decoded speedup geomean %.2fx below the %.2fx floor",
			geomean, *minDecoded)
	}

	// The pruning gate counts kernels, not a mean: pruning targets
	// narrow-output workloads specifically, and the paper kernels'
	// near-zero fractions are expected, not regressions.
	if *minPrunedCI > 0 {
		cleared := 0
		for _, r := range results {
			if r.PrunedCISpeedup >= *minPrunedCI {
				cleared++
			}
		}
		fmt.Fprintf(os.Stderr, "pruned equal-CI speedup ≥ %.2fx on %d/%d kernels\n",
			*minPrunedCI, cleared, len(results))
		if cleared < *minPrunedKernels {
			return fmt.Errorf("only %d kernels reach the %.2fx pruned equal-CI speedup floor (need %d)",
				cleared, *minPrunedCI, *minPrunedKernels)
		}
	}

	// The stratified gate mirrors the pruning gate: count kernels clearing
	// the shrink floor. Stratification pays where the masked stratum is
	// large (the narrow-output kernels); the paper kernels hover near a
	// shrink of 1 by design, which is correct, not a regression.
	if *minStratShrink > 0 {
		cleared := 0
		for _, r := range results {
			if r.StratCIShrink >= *minStratShrink {
				cleared++
			}
		}
		fmt.Fprintf(os.Stderr, "stratified equal-executed CI shrink ≥ %.2fx on %d/%d kernels\n",
			*minStratShrink, cleared, len(results))
		if cleared < *minStratKernels {
			return fmt.Errorf("only %d kernels reach the %.2fx stratified CI-shrink floor (need %d)",
				cleared, *minStratShrink, *minStratKernels)
		}
	}

	// The adaptive gate adds one condition to the stratified gate's
	// shape: a kernel only counts if the pilot-derived plan also matched
	// or beat the static plan's shrink. The static shape is a member of
	// the family the scale optimization searches, so losing to it means
	// the pilot evidence misled the allocator — exactly the regression
	// this gate exists to catch. Ties count: on kernels where the pilot
	// finds no exploitable variance spread, falling back to the static
	// shape is the correct answer.
	if *minAdaptShrink > 0 {
		cleared := 0
		for _, r := range results {
			if r.AdaptCIShrink >= *minAdaptShrink && r.AdaptCIShrink >= r.StratCIShrink-1e-9 {
				cleared++
			}
		}
		fmt.Fprintf(os.Stderr, "adaptive equal-executed CI shrink ≥ %.2fx (and ≥ static) on %d/%d kernels\n",
			*minAdaptShrink, cleared, len(results))
		if cleared < *minAdaptKernels {
			return fmt.Errorf("only %d kernels reach the %.2fx adaptive CI-shrink floor while matching the static plan (need %d)",
				cleared, *minAdaptShrink, *minAdaptKernels)
		}
	}

	// Gate on the aggregate across programs — total fastest instrumented
	// time over total fastest bare time. Individual campaigns are short
	// enough that residual jitter blurs a percent-level signal; pooling
	// across programs damps what fastest-of-N didn't discard.
	var bareTotal, instTotal float64
	for _, r := range results {
		bareTotal += r.OverheadBaseMs
		instTotal += r.InstrumentedMs
	}
	overall := instTotal/bareTotal - 1
	fmt.Fprintf(os.Stderr, "telemetry overhead overall: %+.1f%%\n", overall*100)
	if *maxOverhead > 0 && overall > *maxOverhead {
		return fmt.Errorf("telemetry overhead %.1f%% exceeds the %.1f%% budget",
			overall*100, *maxOverhead*100)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// timeCampaign runs inj's n-trial campaign repeats times — campaigns are
// deterministic, so every run produces the identical result — and
// returns the result with the fastest wall time.
func timeCampaign(inj *fault.Injector, n, repeats int) (*fault.CampaignResult, time.Duration, error) {
	var res *fault.CampaignResult
	var best time.Duration
	for i := 0; i < repeats; i++ {
		start := time.Now()
		r, err := inj.CampaignRandom(context.Background(), n)
		if err != nil {
			return nil, 0, err
		}
		if d := time.Since(start); res == nil || d < best {
			best = d
		}
		res = r
	}
	return res, best, nil
}

// compareCampaigns times the bare and instrumented snapshot engines
// interleaved — bare, instrumented, bare, instrumented, … — after one
// untimed warmup of each, and keeps each side's fastest run. The
// fastest-of-N time is each engine's cleanest scheduling window, so
// their ratio isolates systematic overhead (which slows every
// instrumented run) from one-off noise spikes (which min discards);
// interleaving keeps heap growth and GC pacing from penalizing
// whichever side runs last. Returns the (identical) campaign results
// and the fastest wall time per side.
func compareCampaigns(bare, inst *fault.Injector, n, repeats int) (bres, ires *fault.CampaignResult, bareDur, instDur time.Duration, err error) {
	if _, err = bare.CampaignRandom(context.Background(), n); err != nil {
		return
	}
	if _, err = inst.CampaignRandom(context.Background(), n); err != nil {
		return
	}
	for i := 0; i < repeats; i++ {
		var db, di time.Duration
		if bres, db, err = timeCampaign(bare, n, 1); err != nil {
			return
		}
		if ires, di, err = timeCampaign(inst, n, 1); err != nil {
			return
		}
		if i == 0 || db < bareDur {
			bareDur = db
		}
		if i == 0 || di < instDur {
			instDur = di
		}
	}
	return
}

func benchProgram(name string, n int, seed uint64, workers int, interval uint64, repeats int) (result, error) {
	p, err := progs.ByName(name)
	if err != nil {
		return result{}, err
	}
	m := p.Build()

	legacy, err := fault.New(m, fault.Options{Seed: seed, Workers: workers})
	if err != nil {
		return result{}, err
	}
	lres, legacyDur, err := timeCampaign(legacy, n, repeats)
	if err != nil {
		return result{}, err
	}

	setupStart := time.Now()
	snap, err := fault.New(m, fault.Options{
		Seed: seed, Workers: workers, SnapshotInterval: interval,
	})
	if err != nil {
		return result{}, err
	}
	setupDur := time.Since(setupStart)
	sres, snapDur, err := timeCampaign(snap, n, repeats)
	if err != nil {
		return result{}, err
	}

	// The decoded engine runs the same snapshot-replay campaign, so its
	// column isolates the engine swap: AOT-lowered instruction streams
	// and pooled frames against the tree-walking interpreter.
	dec, err := fault.New(m, fault.Options{
		Seed: seed, Workers: workers, SnapshotInterval: interval,
		Engine: interp.EngineDecoded,
	})
	if err != nil {
		return result{}, err
	}
	dres, decDur, err := timeCampaign(dec, n, repeats)
	if err != nil {
		return result{}, err
	}

	// The pruned column re-runs the decoded campaign with bit-liveness
	// pruning: provably-masked bits classify Benign without executing.
	// Exact reweighting makes the transcript bit-identical, which the
	// identity check below re-verifies on every bench run.
	pruned, err := fault.New(m, fault.Options{
		Seed: seed, Workers: workers, SnapshotInterval: interval,
		Engine: interp.EngineDecoded, PruneBits: true,
	})
	if err != nil {
		return result{}, err
	}
	pres, pruDur, err := timeCampaign(pruned, n, repeats)
	if err != nil {
		return result{}, err
	}
	prunedFrac := pruned.PrunedFraction()

	// The overhead measurement runs its own single-worker pair: worker-
	// pool scheduling jitter at campaign scale is several percent, far
	// above the signal, while single-threaded runs are stable enough to
	// resolve it. The instrumented engine attaches every observability
	// sink at once — metrics registry, JSONL trace, and a throttled
	// progress meter — so the measured overhead is an upper bound on
	// any real configuration.
	obare, err := fault.New(m, fault.Options{
		Seed: seed, Workers: 1, SnapshotInterval: interval,
	})
	if err != nil {
		return result{}, err
	}
	meter := telemetry.NewProgressMeter(io.Discard, 0)
	inst, err := fault.New(m, fault.Options{
		Seed: seed, Workers: 1, SnapshotInterval: interval,
		Metrics:    telemetry.NewRegistry(),
		Trace:      telemetry.NewTrace(io.Discard),
		OnProgress: func(p fault.Progress) { meter.Update(p.String) },
	})
	if err != nil {
		return result{}, err
	}
	_, ires, obareDur, instDur, err := compareCampaigns(obare, inst, n, repeats)
	if err != nil {
		return result{}, err
	}

	// The stratified campaign draws the same slot stream under the
	// default plan (masked stratum thinned to a confirmation sliver) and
	// reweights by inverse inclusion probability. It is compared at equal
	// *executed* trials: the weighted Wilson half-width against the plain
	// half-width a uniform campaign would report for the executed budget.
	// It runs after the overhead pair above: that single-threaded
	// measurement resolves a ~3% signal, and the extra campaign's heap
	// and GC wake would sit right on top of it.
	plan := bitlive.DefaultPlan()
	strat, err := fault.New(m, fault.Options{
		Seed: seed, Workers: workers, SnapshotInterval: interval,
		Engine: interp.EngineDecoded, Stratify: &plan,
	})
	if err != nil {
		return result{}, err
	}
	stratRes, err := strat.CampaignStratified(context.Background(), n)
	if err != nil {
		return result{}, err
	}

	// The adaptive campaign replaces the fixed plan with a pilot-derived
	// one: a static-shape pilot over the slot prefix estimates per-stratum
	// SDC rates, Neyman allocation turns them into thinning rates, and the
	// remaining slots run under the derived plan. Same equal-executed
	// comparison as the stratified column; the pilot trials count against
	// the executed budget, so the shrink already prices in their cost.
	adapt, err := fault.New(m, fault.Options{
		Seed: seed, Workers: workers, SnapshotInterval: interval,
		Engine: interp.EngineDecoded, Adaptive: &fault.AdaptiveConfig{},
	})
	if err != nil {
		return result{}, err
	}
	adaptRes, err := adapt.CampaignAdaptive(context.Background(), n)
	if err != nil {
		return result{}, err
	}

	r := result{
		Program:           name,
		N:                 n,
		Seed:              seed,
		Workers:           workers,
		GoldenDyn:         legacy.GoldenDynInstrs(),
		Interval:          interval,
		Snapshots:         snap.Snapshots(),
		SnapshotSetup:     float64(setupDur.Microseconds()) / 1000,
		LegacyMs:          float64(legacyDur.Microseconds()) / 1000,
		SnapshotMs:        float64(snapDur.Microseconds()) / 1000,
		DecodedMs:         float64(decDur.Microseconds()) / 1000,
		OverheadBaseMs:    float64(obareDur.Microseconds()) / 1000,
		InstrumentedMs:    float64(instDur.Microseconds()) / 1000,
		Speedup:           legacyDur.Seconds() / snapDur.Seconds(),
		DecodedSpeedup:    snapDur.Seconds() / decDur.Seconds(),
		TelemetryOverhead: instDur.Seconds()/obareDur.Seconds() - 1,
		Identical: identical(lres, sres) && identical(sres, dres) &&
			identical(sres, ires) && identical(dres, pres),
		TrialsPerSecL:        float64(n) / legacyDur.Seconds(),
		TrialsPerSecS:        float64(n) / snapDur.Seconds(),
		TrialsPerSecD:        float64(n) / decDur.Seconds(),
		PrunedMs:             float64(pruDur.Microseconds()) / 1000,
		TrialsPerSecP:        float64(n) / pruDur.Seconds(),
		BitsPrunedPct:        prunedFrac * 100,
		PrunedCISpeedup:      ciSpeedup(prunedFrac),
		StratExecuted:        stratRes.ExecutedN(),
		StratWeightedSDC:     stratRes.WeightedSDC(),
		StratCIHalf:          stratRes.WeightedErrorBar95(),
		StratEqualExecCIHalf: stats.ProportionCI95(lres.SDCProb(), stratRes.ExecutedN()),
		StratEffN:            stratRes.EffectiveN(),
		AdaptExecuted:        adaptRes.ExecutedN(),
		PilotExecuted:        adaptRes.PilotExecuted,
		PilotFraction:        adaptRes.PilotFraction(),
		AdaptWeightedSDC:     adaptRes.WeightedSDC(),
		AdaptCIHalf:          adaptRes.WeightedErrorBar95(),
		AdaptEqualExecCIHalf: stats.ProportionCI95(lres.SDCProb(), adaptRes.ExecutedN()),
		AdaptEffN:            adaptRes.EffectiveN(),
		AdaptPlan:            adaptRes.Plan.String(),
		OutcomeSummary:       summarize(lres),
	}
	if r.StratCIHalf > 0 {
		r.StratCIShrink = r.StratEqualExecCIHalf / r.StratCIHalf
	}
	if r.AdaptCIHalf > 0 {
		r.AdaptCIShrink = r.AdaptEqualExecCIHalf / r.AdaptCIHalf
	}
	return r, nil
}

// ciSpeedup returns the equal-CI executed-trial multiplier 1/(1-f) for
// pruned fraction f, reporting the 0 sentinel at f >= 1 where the ratio
// is undefined and its +Inf value would poison the JSON results file.
func ciSpeedup(f float64) float64 {
	if f >= 1 {
		return 0
	}
	return 1 / (1 - f)
}

// identical reports whether two campaigns produced the same trials in the
// same order with the same classifications — the bit-identity contract
// the differential test suite enforces, re-checked here on every bench
// run so the published speedup is never measured against a wrong result.
func identical(a, b *fault.CampaignResult) bool {
	if len(a.Trials) != len(b.Trials) || len(a.Errs) != len(b.Errs) {
		return false
	}
	for i := range a.Trials {
		ta, tb := a.Trials[i], b.Trials[i]
		if ta.Instr != tb.Instr || ta.Instance != tb.Instance || ta.Bit != tb.Bit ||
			ta.Outcome != tb.Outcome || ta.CrashLatency != tb.CrashLatency {
			return false
		}
	}
	return true
}

func summarize(res *fault.CampaignResult) string {
	var b strings.Builder
	for _, o := range fault.AllOutcomes {
		if res.Counts[o] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", o, res.Counts[o])
	}
	return b.String()
}
