// Command fibench compares the two fault-injection execution paths — the
// legacy engine that re-interprets every trial from instruction zero, and
// the snapshot-replay engine that resumes each trial from the nearest
// golden-run snapshot — on identical campaigns, verifies the results are
// bit-identical, and records the timings as JSON (BENCH_fi.json).
//
// Usage:
//
//	fibench [-programs pathfinder,nw,sad] [-n 400] [-seed 7] [-workers 4]
//	        [-interval 2048] [-out BENCH_fi.json]
//
// -out "-" writes to stdout. The run fails if any program's campaigns
// diverge between the two paths.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"trident/internal/fault"
	"trident/internal/progs"
)

// result is one program's measurement, serialized into BENCH_fi.json.
type result struct {
	Program        string  `json:"program"`
	N              int     `json:"n"`
	Seed           uint64  `json:"seed"`
	Workers        int     `json:"workers"`
	GoldenDyn      uint64  `json:"golden_dyn_instrs"`
	Interval       uint64  `json:"snapshot_interval"`
	Snapshots      int     `json:"snapshots"`
	SnapshotSetup  float64 `json:"snapshot_setup_ms"`
	LegacyMs       float64 `json:"legacy_ms"`
	SnapshotMs     float64 `json:"snapshot_ms"`
	Speedup        float64 `json:"speedup"`
	Identical      bool    `json:"identical"`
	TrialsPerSecL  float64 `json:"legacy_trials_per_sec"`
	TrialsPerSecS  float64 `json:"snapshot_trials_per_sec"`
	OutcomeSummary string  `json:"outcomes"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fibench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fibench", flag.ContinueOnError)
	programs := fs.String("programs", "pathfinder,nw,sad", "comma-separated benchmark names")
	n := fs.Int("n", 400, "injections per campaign")
	seed := fs.Uint64("seed", 7, "deterministic seed (same for both paths)")
	workers := fs.Int("workers", 4, "parallel injection workers")
	interval := fs.Uint64("interval", 2048, "snapshot interval in dynamic instructions")
	out := fs.String("out", "BENCH_fi.json", "output JSON path, or - for stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval == 0 {
		return fmt.Errorf("-interval must be positive (0 would benchmark the legacy path against itself)")
	}

	var results []result
	for _, name := range strings.Split(*programs, ",") {
		name = strings.TrimSpace(name)
		r, err := benchProgram(name, *n, *seed, *workers, *interval)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(os.Stderr,
			"%-12s golden=%-6d snapshots=%-3d legacy=%7.1fms snapshot=%7.1fms speedup=%.2fx identical=%v\n",
			r.Program, r.GoldenDyn, r.Snapshots, r.LegacyMs, r.SnapshotMs, r.Speedup, r.Identical)
		if !r.Identical {
			return fmt.Errorf("%s: snapshot campaign diverged from legacy campaign", name)
		}
		results = append(results, r)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

func benchProgram(name string, n int, seed uint64, workers int, interval uint64) (result, error) {
	p, err := progs.ByName(name)
	if err != nil {
		return result{}, err
	}
	m := p.Build()

	legacy, err := fault.New(m, fault.Options{Seed: seed, Workers: workers})
	if err != nil {
		return result{}, err
	}
	start := time.Now()
	lres, err := legacy.CampaignRandom(context.Background(), n)
	if err != nil {
		return result{}, err
	}
	legacyDur := time.Since(start)

	setupStart := time.Now()
	snap, err := fault.New(m, fault.Options{
		Seed: seed, Workers: workers, SnapshotInterval: interval,
	})
	if err != nil {
		return result{}, err
	}
	setupDur := time.Since(setupStart)
	start = time.Now()
	sres, err := snap.CampaignRandom(context.Background(), n)
	if err != nil {
		return result{}, err
	}
	snapDur := time.Since(start)

	r := result{
		Program:        name,
		N:              n,
		Seed:           seed,
		Workers:        workers,
		GoldenDyn:      legacy.GoldenDynInstrs(),
		Interval:       interval,
		Snapshots:      snap.Snapshots(),
		SnapshotSetup:  float64(setupDur.Microseconds()) / 1000,
		LegacyMs:       float64(legacyDur.Microseconds()) / 1000,
		SnapshotMs:     float64(snapDur.Microseconds()) / 1000,
		Speedup:        legacyDur.Seconds() / snapDur.Seconds(),
		Identical:      identical(lres, sres),
		TrialsPerSecL:  float64(n) / legacyDur.Seconds(),
		TrialsPerSecS:  float64(n) / snapDur.Seconds(),
		OutcomeSummary: summarize(lres),
	}
	return r, nil
}

// identical reports whether two campaigns produced the same trials in the
// same order with the same classifications — the bit-identity contract
// the differential test suite enforces, re-checked here on every bench
// run so the published speedup is never measured against a wrong result.
func identical(a, b *fault.CampaignResult) bool {
	if len(a.Trials) != len(b.Trials) || len(a.Errs) != len(b.Errs) {
		return false
	}
	for i := range a.Trials {
		ta, tb := a.Trials[i], b.Trials[i]
		if ta.Instr != tb.Instr || ta.Instance != tb.Instance || ta.Bit != tb.Bit ||
			ta.Outcome != tb.Outcome || ta.CrashLatency != tb.CrashLatency {
			return false
		}
	}
	return true
}

func summarize(res *fault.CampaignResult) string {
	var b strings.Builder
	for _, o := range fault.AllOutcomes {
		if res.Counts[o] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", o, res.Counts[o])
	}
	return b.String()
}
