// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags]
//
//	-run string      comma-separated experiments to run:
//	                 table1,fig5,table2,fig6a,fig6b,fig7,fig8,fig9,inputs,
//	                 ablations,pruning,stratify,adaptive or "all"
//	                 (default "all")
//	-samples int     FI samples for overall SDC probabilities (default 3000)
//	-perinstr int    FI samples per static instruction (default 100)
//	-seed uint       deterministic seed (default 2018)
//	-programs string comma-separated benchmark subset (default: all 11)
//	-workers int     parallel FI workers (default 4)
//	-format string   "text" (default) or "md" (markdown tables)
//	-checkpoint-dir  directory for per-campaign JSONL checkpoints; an
//	                 interrupted run (Ctrl-C, crash) resumes from them
//	-snapshot-interval int
//	                 dynamic instructions between golden-run snapshots that
//	                 FI trials resume from; 0 disables snapshot replay and
//	                 re-executes every trial from instruction zero
//	                 (default 2048)
//	-engine string   interpreter engine for golden runs and FI trials:
//	                 "legacy" (default) or "decoded" (pre-decoded
//	                 instruction streams; bit-identical results, faster
//	                 campaigns)
//	-metrics-out string
//	                 write a JSON metrics snapshot here on exit
//	                 (see OBSERVABILITY.md)
//	-trace-out string
//	                 write a JSONL event trace here (program loads,
//	                 campaign spans, errored trials)
//	-debug-addr string
//	                 serve expvar and pprof on this HTTP address for the
//	                 run's lifetime (e.g. :6060)
//	-progress        render a live campaign progress line on stderr
//	                 (default true)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"trident/internal/experiments"
	"trident/internal/fault"
	"trident/internal/interp"
	"trident/internal/sigctx"
	"trident/internal/telemetry"
)

func main() {
	// Ctrl-C / SIGTERM cancels in-flight campaigns; with -checkpoint-dir
	// their completed trials survive for the next run to resume from.
	// The exit code distinguishes "cancelled with partial results"
	// (130/143, per signal) from "errored" (1).
	ctx, stop, fired := sigctx.WithSignals(context.Background())
	err := run(ctx, os.Args[1:])
	stop()
	if err != nil {
		if sig := fired(); sig != nil && errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: cancelled; completed campaigns were reported (and checkpointed with -checkpoint-dir)")
			os.Exit(sigctx.ExitCode(sig))
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if sig := fired(); sig != nil {
		os.Exit(sigctx.ExitCode(sig))
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runList := fs.String("run", "all", "experiments to run (comma separated, or 'all')")
	samples := fs.Int("samples", 3000, "FI samples for overall SDC")
	perInstr := fs.Int("perinstr", 100, "FI samples per instruction")
	seed := fs.Uint64("seed", 2018, "deterministic seed")
	programs := fs.String("programs", "", "benchmark subset (comma separated)")
	workers := fs.Int("workers", 4, "parallel FI workers")
	format := fs.String("format", "text", "output format: text or md")
	checkpointDir := fs.String("checkpoint-dir", "", "directory for per-campaign JSONL checkpoints; an interrupted run resumes from them")
	cacheDir := fs.String("cache-dir", "", "content-addressed per-function campaign profile cache; re-runs re-inject only edited functions (takes precedence over -checkpoint-dir)")
	snapInterval := fs.Int("snapshot-interval", 2048, "dynamic instructions between golden-run snapshots that FI trials resume from (0 = legacy full re-execution)")
	engineName := fs.String("engine", "legacy", "interpreter engine for golden runs and FI trials: legacy or decoded")
	metricsOut := fs.String("metrics-out", "", "write a JSON metrics snapshot here on exit (see OBSERVABILITY.md)")
	traceOut := fs.String("trace-out", "", "write a JSONL event trace here (program loads, campaign spans, errored trials)")
	debugAddr := fs.String("debug-addr", "", "serve expvar and pprof on this HTTP address (e.g. :6060) for the run's lifetime")
	progress := fs.Bool("progress", true, "render a live campaign progress line on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	md := *format == "md"
	engine, err := interp.ParseEngine(*engineName)
	if err != nil {
		return err
	}

	reg := telemetry.Default
	var trace *telemetry.Trace
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer tf.Close()
		trace = telemetry.NewTrace(tf)
	}
	if *debugAddr != "" {
		dbg, err := telemetry.ServeDebug(*debugAddr, reg)
		if err != nil {
			return err
		}
		// Graceful: an in-flight pprof scrape gets a second to finish.
		defer dbg.Shutdown(time.Second)
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars\n", dbg.Addr())
	}
	// Metrics accumulate across every selected experiment; the snapshot
	// is written even when a run fails midway, so a cancelled run still
	// leaves its telemetry behind.
	if *metricsOut != "" {
		defer func() {
			if werr := writeMetrics(reg, *metricsOut); werr != nil {
				fmt.Fprintln(os.Stderr, "experiments: writing metrics:", werr)
			} else {
				fmt.Fprintf(os.Stderr, "metrics written to %s\n", *metricsOut)
			}
		}()
	}
	// Experiments run campaigns sequentially, so a single meter renders
	// whichever campaign is currently active.
	var meter *telemetry.ProgressMeter
	var onProgress func(fault.Progress)
	if *progress {
		meter = telemetry.NewProgressMeter(os.Stderr, 0)
		onProgress = func(p fault.Progress) {
			meter.Update(p.String)
			if p.Done == p.Total {
				meter.Done()
			}
		}
	}

	if *checkpointDir != "" {
		if err := os.MkdirAll(*checkpointDir, 0o755); err != nil {
			return err
		}
	}
	cfg := experiments.Config{
		Samples:       *samples,
		PerInstr:      *perInstr,
		Seed:          *seed,
		Workers:       *workers,
		Context:       ctx,
		CheckpointDir: *checkpointDir,
		CacheDir:      *cacheDir,
		// Config's convention: negative disables the snapshot engine.
		SnapshotInterval: *snapInterval,
		Metrics:          reg,
		Trace:            trace,
		Progress:         onProgress,
		Engine:           engine,
	}
	if *snapInterval == 0 {
		cfg.SnapshotInterval = -1
	}
	if *programs != "" {
		cfg.Programs = strings.Split(*programs, ",")
	}

	selected := map[string]bool{}
	if *runList == "all" {
		for _, n := range []string{"table1", "fig5", "table2", "fig6a", "fig6b",
			"fig7", "fig8", "fig9", "inputs", "ablations", "pruning", "stratify", "adaptive"} {
			selected[n] = true
		}
	} else {
		for _, n := range strings.Split(*runList, ",") {
			selected[strings.TrimSpace(n)] = true
		}
	}

	w := os.Stdout
	stamp := func(name string, start time.Time) {
		fmt.Fprintf(w, "[%s completed in %.1fs]\n", name, time.Since(start).Seconds())
		experiments.RenderSeparator(w)
	}

	if selected["table1"] {
		start := time.Now()
		rows, err := experiments.Table1(cfg)
		if err != nil {
			return err
		}
		if md {
			experiments.MarkdownTable1(w, rows)
		} else {
			experiments.RenderTable1(w, rows)
		}
		stamp("table1", start)
	}
	if selected["fig5"] {
		start := time.Now()
		res, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		if md {
			experiments.MarkdownFig5(w, res)
		} else {
			experiments.RenderFig5(w, res)
		}
		stamp("fig5", start)
	}
	if selected["table2"] {
		start := time.Now()
		res, err := experiments.Table2(cfg)
		if err != nil {
			return err
		}
		if md {
			experiments.MarkdownTable2(w, res)
		} else {
			experiments.RenderTable2(w, res)
		}
		stamp("table2", start)
	}
	if selected["fig6a"] && selected["fig6b"] && md {
		start := time.Now()
		a, err := experiments.Fig6a(cfg, nil)
		if err != nil {
			return err
		}
		b, err := experiments.Fig6b(cfg, nil)
		if err != nil {
			return err
		}
		experiments.MarkdownFig6(w, a, b)
		stamp("fig6", start)
	} else {
		if selected["fig6a"] {
			start := time.Now()
			points, err := experiments.Fig6a(cfg, nil)
			if err != nil {
				return err
			}
			experiments.RenderFig6a(w, points)
			stamp("fig6a", start)
		}
		if selected["fig6b"] {
			start := time.Now()
			points, err := experiments.Fig6b(cfg, nil)
			if err != nil {
				return err
			}
			experiments.RenderFig6b(w, points)
			stamp("fig6b", start)
		}
	}
	if selected["fig7"] {
		start := time.Now()
		rows, err := experiments.Fig7(cfg)
		if err != nil {
			return err
		}
		if md {
			experiments.MarkdownFig7(w, rows)
		} else {
			experiments.RenderFig7(w, rows)
		}
		stamp("fig7", start)
	}
	if selected["fig8"] {
		start := time.Now()
		res, err := experiments.Fig8(cfg)
		if err != nil {
			return err
		}
		if md {
			experiments.MarkdownFig8(w, res)
		} else {
			experiments.RenderFig8(w, res)
		}
		stamp("fig8", start)
	}
	if selected["fig9"] {
		start := time.Now()
		res, err := experiments.Fig9(cfg)
		if err != nil {
			return err
		}
		if md {
			experiments.MarkdownFig9(w, res)
		} else {
			experiments.RenderFig9(w, res)
		}
		stamp("fig9", start)
	}
	if selected["inputs"] {
		start := time.Now()
		rows, err := experiments.InputSensitivity(cfg, 3)
		if err != nil {
			return err
		}
		if md {
			experiments.MarkdownInputs(w, rows)
		} else {
			experiments.RenderInputs(w, rows)
		}
		stamp("inputs", start)
	}
	if selected["ablations"] {
		start := time.Now()
		if err := runAblations(cfg); err != nil {
			return err
		}
		stamp("ablations", start)
	}
	if selected["pruning"] {
		start := time.Now()
		rows, err := experiments.Pruning(cfg)
		if err != nil {
			return err
		}
		if md {
			experiments.MarkdownPruning(w, rows)
		} else {
			experiments.RenderPruning(w, rows)
		}
		stamp("pruning", start)
	}
	if selected["stratify"] {
		start := time.Now()
		rows, err := experiments.Stratify(cfg)
		if err != nil {
			return err
		}
		if md {
			experiments.MarkdownStratify(w, rows)
		} else {
			experiments.RenderStratify(w, rows)
		}
		stamp("stratify", start)
	}
	if selected["adaptive"] {
		start := time.Now()
		rows, err := experiments.Adaptive(cfg)
		if err != nil {
			return err
		}
		if md {
			experiments.MarkdownAdaptive(w, rows)
		} else {
			experiments.RenderAdaptive(w, rows)
		}
		stamp("adaptive", start)
	}
	return nil
}

// writeMetrics dumps a registry snapshot as indented JSON at path.
func writeMetrics(reg *telemetry.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runAblations(cfg experiments.Config) error {
	w := os.Stdout
	vp, err := experiments.AblationValueProfile(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablation (fs value profile): MAE with %.2f%%, without %.2f%%\n",
		vp.MAEWith*100, vp.MAEWithout*100)

	pr, err := experiments.AblationPruning(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablation (fm pruning): pruned %.3fs vs expanded %.3fs (%d dyn deps -> %d static edges, max divergence %.2e)\n",
		pr.PrunedSeconds, pr.ExpandedSeconds, pr.DynDeps, pr.StaticEdges, pr.MaxDivergence)

	fp, err := experiments.AblationFixpoint(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Fprint(w, "Ablation (fm fixpoint cap): ")
	for i, p := range fp {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprintf(w, "%d sweeps -> %.2f%%", p.MaxIters, p.MeanSDC*100)
	}
	fmt.Fprintln(w)

	kn, err := experiments.AblationKnapsack(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Ablation (selection policy at 1/3 bound): knapsack %.2f%% SDC vs top-k %.2f%% SDC\n",
		kn.MeanSDCKnapsack*100, kn.MeanSDCTopK*100)
	return nil
}
