// Command diag compares TRIDENT per-instruction predictions against
// per-instruction fault injection, for model debugging.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"trident/internal/core"
	"trident/internal/fault"
	"trident/internal/profile"
	"trident/internal/progs"
)

func main() {
	program := flag.String("program", "pathfinder", "benchmark name")
	trials := flag.Int("n", 150, "FI trials per instruction")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	p, err := progs.ByName(*program)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	m := p.Build()
	prof, err := profile.Collect(m, profile.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	model := core.New(prof, core.TridentConfig())
	inj, err := fault.New(m, fault.Options{Seed: 5, Workers: 8})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	targets := inj.Targets()
	sort.Slice(targets, func(i, j int) bool { return targets[i].ID < targets[j].ID })
	fmt.Printf("%-34s %8s %8s %8s %8s %8s %8s %8s\n",
		"instr", "count", "model", "fi-sdc", "gap", "fi-crash", "m-crash", "fi-ben")
	for _, in := range targets {
		res, err := inj.CampaignPerInstr(ctx, in, *trials)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "diag: cancelled")
				return
			}
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		gap := model.InstrSDC(in) - res.SDCProb()
		fmt.Printf("%-34s %8d %8.3f %8.3f %+8.3f %8.3f %8.3f %8.3f\n",
			in.String()+" @"+in.Block.Name, inj.ExecCount(in), model.InstrSDC(in),
			res.SDCProb(), gap, res.Rate(fault.Crash), model.InstrCrash(in), res.Rate(fault.Benign))
	}
}
