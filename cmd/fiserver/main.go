// Command fiserver runs the campaign-as-a-service HTTP server: it
// accepts fault-injection campaign submissions (built-in benchmark
// names or textual IR), queues them as durable jobs under a spool
// directory, runs each campaign sharded across a crash-tolerant worker
// pool, and streams progress and results as JSONL. See the "Running
// the campaign server" section of README.md for a walkthrough.
//
// The API surface (all JSON):
//
//	POST   /jobs              submit a campaign        → 202 {id, state}
//	GET    /jobs              list jobs
//	GET    /jobs/{id}         job status incl. shards
//	GET    /jobs/{id}/events  JSONL progress stream until terminal
//	GET    /jobs/{id}/result  final (or partial) result
//	DELETE /jobs/{id}         cancel
//	GET    /healthz           liveness + draining flag
//
// On SIGTERM or SIGINT the server drains: admission flips to 503,
// running shards are cancelled (their checkpoints hold every completed
// trial), interrupted jobs re-queue on disk, and the process exits
// 143/130. Restarting over the same -spool resumes them.
//
// With -worker-dir/-worker-shard the binary instead runs as a single
// shard worker (used internally by -worker-mode exec, which gives every
// shard its own process — a kill-able failure domain).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"trident/internal/server"
	"trident/internal/sigctx"
	"trident/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fiserver", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8344", "HTTP listen address (\":0\" picks a free port; see -addr-file)")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file (for scripts using -addr :0)")
	spool := fs.String("spool", "", "durable job directory (required); restarting over the same spool resumes interrupted jobs")
	jobs := fs.Int("jobs", 2, "max concurrently running jobs")
	queueDepth := fs.Int("queue-depth", 64, "max queued jobs before submissions get 429")
	shards := fs.Int("shards", 4, "default shard count for jobs that don't choose one")
	workerMode := fs.String("worker-mode", "inproc", "how shards run: inproc (goroutines) or exec (one child process per shard)")
	shardRetries := fs.Int("shard-retries", 2, "times a crashed shard is retried from its checkpoint before the job degrades")
	retryBase := fs.Duration("retry-base", 250*time.Millisecond, "base delay of the shard retry backoff")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "how long a signal-triggered drain may take before giving up")
	maxTrials := fs.Int("max-trials", 1_000_000, "per-job trial budget")
	maxIRBytes := fs.Int("max-ir-bytes", 4<<20, "max submitted IR text size")
	maxWall := fs.Duration("max-wall", 15*time.Minute, "per-job wall-clock budget (jobs exceeding it degrade to partial results)")
	chaosDelay := fs.Duration("chaos-trial-delay", 0, "slow every trial by this much (crash-drill instrumentation, not for production)")
	resultCache := fs.Bool("result-cache", true, "serve repeated campaigns (same module hash, seed, n) from a spool-backed result cache")
	metricsOut := fs.String("metrics-out", "", "write a JSON metrics snapshot here on exit")
	traceOut := fs.String("trace-out", "", "write a JSONL event trace here (job/shard/drain spans)")
	debugAddr := fs.String("debug-addr", "", "serve expvar and pprof on this HTTP address")
	workerDir := fs.String("worker-dir", "", "run as a shard worker over this job directory (internal, used by -worker-mode exec)")
	workerShard := fs.Int("worker-shard", -1, "shard index to run in -worker-dir mode")
	workerPhase := fs.String("worker-phase", "", "campaign phase to run in -worker-dir mode: empty, pilot or main (internal)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *workerDir != "" {
		return server.RunWorker(*workerDir, *workerShard, *workerPhase, *chaosDelay)
	}
	if *spool == "" {
		fmt.Fprintln(os.Stderr, "fiserver: -spool is required")
		return 2
	}

	reg := telemetry.Default
	var trace *telemetry.Trace
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fiserver:", err)
			return 1
		}
		defer tf.Close()
		trace = telemetry.NewTrace(tf)
	}
	var dbg *telemetry.DebugServer
	if *debugAddr != "" {
		d, err := telemetry.ServeDebug(*debugAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fiserver:", err)
			return 1
		}
		dbg = d
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/vars\n", dbg.Addr())
	}

	resultCacheDir := ""
	if *resultCache {
		resultCacheDir = filepath.Join(*spool, "cache")
	}
	srv, err := server.New(server.Config{
		Spool:             *spool,
		MaxConcurrentJobs: *jobs,
		MaxQueueDepth:     *queueDepth,
		DefaultShards:     *shards,
		ShardRetries:      *shardRetries,
		RetryBase:         *retryBase,
		WorkerMode:        *workerMode,
		ChaosTrialDelay:   *chaosDelay,
		ResultCacheDir:    resultCacheDir,
		Limits: server.Limits{
			MaxTrials:  *maxTrials,
			MaxIRBytes: *maxIRBytes,
			MaxWall:    *maxWall,
		},
		Metrics: reg,
		Trace:   trace,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiserver:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fiserver:", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fiserver:", err)
			return 1
		}
	}
	fmt.Fprintf(os.Stderr, "fiserver listening on http://%s (spool %s, %s workers)\n",
		ln.Addr(), *spool, *workerMode)

	srv.Start()
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()

	ctx, stop, fired := sigctx.WithSignals(context.Background())
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-httpErr:
		fmt.Fprintln(os.Stderr, "fiserver: listener died:", err)
		return 1
	}
	sig := fired()
	fmt.Fprintf(os.Stderr, "fiserver: %v received, draining (budget %v)\n", sig, *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "fiserver:", err)
	}
	// Drain first, HTTP second: submissions arriving mid-drain still get
	// clean 503s, then in-flight responses (event streams included) get
	// a short grace before the remaining connections are cut.
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
	}
	_ = dbg.Shutdown(time.Second)
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = reg.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fiserver:", err)
		}
	}
	fmt.Fprintln(os.Stderr, "fiserver: drained, exiting")
	return sigctx.ExitCode(sig)
}
