// Command trace explains TRIDENT predictions: for the most SDC-prone
// instructions of a program (or one specific instruction), it decomposes
// the predicted SDC probability into its propagation paths — direct
// register flow to output, corrupted stores chased through memory, and
// flipped branches with their divergence effects.
//
// Usage:
//
//	trace -program pathfinder [-top 5]
//	trace -program pathfinder -instr 42      # explain instruction #42
//	trace -ir file.tir [...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"trident/internal/core"
	"trident/internal/ir"
	"trident/internal/profile"
	"trident/internal/progs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	program := fs.String("program", "", "built-in benchmark name")
	irFile := fs.String("ir", "", "textual IR file")
	top := fs.Int("top", 5, "number of top instructions to explain")
	instrID := fs.Int("instr", -1, "explain one instruction by ID in main")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		m   *ir.Module
		err error
	)
	switch {
	case *program != "":
		p, perr := progs.ByName(*program)
		if perr != nil {
			return perr
		}
		m = p.Build()
	case *irFile != "":
		src, ferr := os.ReadFile(*irFile)
		if ferr != nil {
			return ferr
		}
		m, err = ir.Parse(string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -program or -ir is required")
	}

	prof, err := profile.Collect(m, profile.Options{})
	if err != nil {
		return err
	}
	model := core.New(prof, core.TridentConfig())

	if *instrID >= 0 {
		in := m.Func("main").InstrByID(*instrID)
		if in == nil {
			return fmt.Errorf("no instruction #%d in main", *instrID)
		}
		fmt.Print(model.Explain(in).String())
		return nil
	}

	var ranked []*ir.Instr
	m.Instrs(func(in *ir.Instr) {
		if in.HasResult() && prof.ExecCount[in] > 0 {
			ranked = append(ranked, in)
		}
	})
	sort.Slice(ranked, func(i, j int) bool {
		a, b := model.InstrSDC(ranked[i]), model.InstrSDC(ranked[j])
		if a != b {
			return a > b
		}
		return ranked[i].ID < ranked[j].ID
	})
	if *top > len(ranked) {
		*top = len(ranked)
	}
	fmt.Printf("top %d SDC-prone instructions of %s, with propagation paths:\n\n", *top, m.Name)
	for _, in := range ranked[:*top] {
		fmt.Println(model.Explain(in).String())
	}
	return nil
}
