// Package trident is a from-scratch Go reproduction of TRIDENT, the
// three-level soft-error propagation model of Li et al., "Modeling
// Soft-Error Propagation in Programs" (DSN 2018).
//
// TRIDENT predicts, without fault injection, the probability that a
// transient hardware fault (a single bit flip in the destination register
// of a dynamic instruction) leads to a silent data corruption (SDC) — both
// per static instruction and for the whole program. It composes three
// sub-models: fs (static data-dependent instruction sequences), fc
// (control-flow divergence) and fm (memory-level propagation), built on
// one profiled execution.
//
// This package is the high-level façade. It exposes:
//
//   - Analyze: profile a program and predict SDC probabilities;
//   - Campaign: run an LLFI-style fault-injection campaign (the ground
//     truth TRIDENT is validated against);
//   - Protect: the paper's use case — selective instruction duplication
//     under a performance-overhead bound, guided by the model.
//
// Programs are written in the repository's LLVM-flavored IR (see
// internal/ir); the eleven benchmarks of the paper's Table I ship in the
// registry and can be named directly. Lower-level control (custom model
// variants, direct access to profiles and sub-models) lives in the
// internal packages; the cmd/ binaries expose the full evaluation.
package trident

import (
	"context"
	"fmt"
	"sort"

	"trident/internal/core"
	"trident/internal/fault"
	"trident/internal/ir"
	"trident/internal/profile"
	"trident/internal/progs"
	"trident/internal/protect"
	"trident/internal/stats"
)

// ModelKind selects the model variant.
type ModelKind string

// Model variants: the full three-level model and the paper's two
// simplified comparison models.
const (
	ModelTrident ModelKind = "trident"
	ModelFSFC    ModelKind = "fs+fc"
	ModelFS      ModelKind = "fs"
)

func (k ModelKind) config() (core.Config, error) {
	switch k {
	case ModelTrident, "":
		return core.TridentConfig(), nil
	case ModelFSFC:
		return core.FSFCConfig(), nil
	case ModelFS:
		return core.FSOnlyConfig(), nil
	default:
		return core.Config{}, fmt.Errorf("trident: unknown model %q", k)
	}
}

// Benchmarks returns the names of the built-in benchmark programs: the
// paper's Table I kernels plus the narrow-output kernels added for the
// bit-liveness pruning work (ANALYSIS.md).
func Benchmarks() []string { return progs.Names() }

// InstrPrediction is one instruction's model prediction.
type InstrPrediction struct {
	// Instruction is the printed IR form.
	Instruction string
	// Location is "function:block:#id".
	Location string
	// SDC is the predicted SDC probability given fault activation.
	SDC float64
	// Crash is the estimated crash probability.
	Crash float64
	// ExecCount is the profiled dynamic execution count.
	ExecCount uint64
}

// Report is the result of Analyze.
type Report struct {
	// Program is the analyzed program's name.
	Program string
	// OverallSDC is the predicted program SDC probability.
	OverallSDC float64
	// Instrs lists per-instruction predictions, most SDC-prone first.
	Instrs []InstrPrediction
	// StaticInstrs and DynInstrs are program size characteristics.
	StaticInstrs int
	DynInstrs    uint64
	// PruningRatio is the fraction of dynamic memory dependencies removed
	// by static aggregation in the memory sub-model.
	PruningRatio float64
}

// Options configure Analyze, Campaign and Protect. The zero value uses
// paper-faithful defaults.
type Options struct {
	// Model selects the variant (default ModelTrident).
	Model ModelKind
	// Seed drives all deterministic sampling (default 1).
	Seed uint64
	// Samples is the FI trial count for Campaign and the evaluation
	// budget in Protect (default 3000).
	Samples int
	// Workers is the FI parallelism (default 4).
	Workers int
	// Context, when non-nil, cancels in-flight fault-injection campaigns
	// (Campaign, Protect); cancelled campaigns fail with the context's
	// error rather than running to completion.
	Context context.Context
	// SnapshotInterval tunes the snapshot-replay fault-injection engine:
	// golden-run state snapshots are captured roughly this many dynamic
	// instructions apart and each trial resumes from the nearest snapshot
	// before its injection point. Zero selects the default (2048);
	// negative disables snapshots so every trial re-executes from
	// instruction zero (the legacy path). Campaign results are
	// bit-identical either way.
	SnapshotInterval int
}

// faultOptions builds injector options from o, resolving the
// snapshot-interval convention above.
func (o Options) faultOptions() fault.Options {
	fo := fault.Options{Seed: o.Seed, Workers: o.Workers}
	if o.SnapshotInterval > 0 {
		fo.SnapshotInterval = uint64(o.SnapshotInterval)
	}
	return fo
}

// ctx resolves the configured context.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Samples == 0 {
		o.Samples = 3000
	}
	if o.SnapshotInterval == 0 {
		o.SnapshotInterval = 2048
	}
	return o
}

// loadProgram resolves a benchmark name or parses IR text when src is
// non-empty.
func loadProgram(name, src string) (*ir.Module, error) {
	if src != "" {
		return ir.Parse(src)
	}
	p, err := progs.ByName(name)
	if err != nil {
		return nil, err
	}
	return p.Build(), nil
}

// Analyze profiles the named built-in benchmark and predicts its SDC
// probabilities with the selected model — the paper's Figure 1b workflow,
// no fault injection involved.
func Analyze(program string, opts Options) (*Report, error) {
	m, err := loadProgram(program, "")
	if err != nil {
		return nil, err
	}
	return analyzeModule(program, m, opts)
}

// AnalyzeIR is Analyze for a program in textual IR form.
func AnalyzeIR(src string, opts Options) (*Report, error) {
	m, err := loadProgram("", src)
	if err != nil {
		return nil, err
	}
	return analyzeModule(m.Name, m, opts)
}

func analyzeModule(name string, m *ir.Module, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	cfg, err := opts.Model.config()
	if err != nil {
		return nil, err
	}
	prof, err := profile.Collect(m, profile.Options{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	model := core.New(prof, cfg)

	rep := &Report{
		Program:      name,
		OverallSDC:   model.OverallSDC(0, opts.Seed).SDC,
		StaticInstrs: m.NumInstrs(),
		DynInstrs:    prof.Golden.DynInstrs,
		PruningRatio: prof.PruningRatio(),
	}
	m.Instrs(func(in *ir.Instr) {
		if !in.HasResult() || prof.ExecCount[in] == 0 {
			return
		}
		rep.Instrs = append(rep.Instrs, InstrPrediction{
			Instruction: ir.FormatInstr(in),
			Location:    in.Pos(),
			SDC:         model.InstrSDC(in),
			Crash:       model.InstrCrash(in),
			ExecCount:   prof.ExecCount[in],
		})
	})
	sort.Slice(rep.Instrs, func(i, j int) bool {
		if rep.Instrs[i].SDC != rep.Instrs[j].SDC {
			return rep.Instrs[i].SDC > rep.Instrs[j].SDC
		}
		return rep.Instrs[i].Location < rep.Instrs[j].Location
	})
	return rep, nil
}

// FIReport is the result of a fault-injection campaign.
type FIReport struct {
	// Program is the injected program's name.
	Program string
	// Trials is the number of injections performed.
	Trials int
	// SDC, Crash, Hang, Benign and Detected are outcome rates.
	SDC, Crash, Hang, Benign, Detected float64
	// ErrorBar95 is the half-width of the 95% confidence interval on SDC.
	ErrorBar95 float64
}

// Campaign runs an LLFI-style statistical fault-injection campaign on the
// named benchmark: opts.Samples single-bit flips into destination
// registers of uniformly sampled dynamic instructions, one per run.
func Campaign(program string, opts Options) (*FIReport, error) {
	m, err := loadProgram(program, "")
	if err != nil {
		return nil, err
	}
	return campaignModule(program, m, opts)
}

// CampaignIR is Campaign for a program in textual IR form.
func CampaignIR(src string, opts Options) (*FIReport, error) {
	m, err := loadProgram("", src)
	if err != nil {
		return nil, err
	}
	return campaignModule(m.Name, m, opts)
}

func campaignModule(name string, m *ir.Module, opts Options) (*FIReport, error) {
	opts = opts.withDefaults()
	inj, err := fault.New(m, opts.faultOptions())
	if err != nil {
		return nil, err
	}
	res, err := inj.CampaignRandom(opts.ctx(), opts.Samples)
	if err != nil {
		return nil, err
	}
	return &FIReport{
		Program:    name,
		Trials:     res.N(),
		SDC:        res.SDCProb(),
		Crash:      res.Rate(fault.Crash),
		Hang:       res.Rate(fault.Hang),
		Benign:     res.Rate(fault.Benign),
		Detected:   res.Rate(fault.Detected),
		ErrorBar95: stats.ProportionCI95(res.SDCProb(), res.N()),
	}, nil
}

// ProtectReport is the result of Protect.
type ProtectReport struct {
	// Program is the protected program's name.
	Program string
	// BudgetFraction is the requested share of the full-duplication cost.
	BudgetFraction float64
	// SelectedInstrs is the number of duplicated static instructions.
	SelectedInstrs int
	// Overhead is the measured dynamic-instruction overhead.
	Overhead float64
	// FullOverhead is the measured full-duplication overhead.
	FullOverhead float64
	// BaselineSDC and ProtectedSDC are FI-measured SDC probabilities
	// before and after protection.
	BaselineSDC, ProtectedSDC float64
	// DetectionRate is the FI-measured rate of faults caught by the
	// inserted checks.
	DetectionRate float64
}

// Protect applies the paper's use case (§VI) to the named benchmark:
// model-guided selective instruction duplication under a performance
// budget expressed as a fraction of the full-duplication cost (the paper
// evaluates 1/3 and 2/3). Fault injection is used only to evaluate the
// result, exactly as in the paper.
func Protect(program string, budgetFraction float64, opts Options) (*ProtectReport, error) {
	if budgetFraction < 0 || budgetFraction > 1 {
		return nil, fmt.Errorf("trident: budget fraction %v outside [0, 1]", budgetFraction)
	}
	opts = opts.withDefaults()
	cfg, err := opts.Model.config()
	if err != nil {
		return nil, err
	}
	m, err := loadProgram(program, "")
	if err != nil {
		return nil, err
	}

	prof, err := profile.Collect(m, profile.Options{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	model := core.New(prof, cfg)
	sdc := make(map[*ir.Instr]float64)
	m.Instrs(func(in *ir.Instr) {
		if in.HasResult() {
			sdc[in] = model.InstrSDC(in)
		}
	})

	cands := protect.Candidates(prof, sdc)
	fullCost := protect.FullCost(cands)
	fullMod, err := protect.Apply(m, protect.SelectKnapsack(cands, fullCost).Selected)
	if err != nil {
		return nil, err
	}
	fullOverhead, err := protect.MeasureOverhead(m, fullMod)
	if err != nil {
		return nil, err
	}

	budget := uint64(budgetFraction * float64(fullCost))
	plan := protect.SelectKnapsack(cands, budget)
	protected, err := protect.Apply(m, plan.Selected)
	if err != nil {
		return nil, err
	}
	overhead, err := protect.MeasureOverhead(m, protected)
	if err != nil {
		return nil, err
	}

	baseInj, err := fault.New(m, opts.faultOptions())
	if err != nil {
		return nil, err
	}
	base, err := baseInj.CampaignRandom(opts.ctx(), opts.Samples)
	if err != nil {
		return nil, err
	}
	protInj, err := fault.New(protected, opts.faultOptions())
	if err != nil {
		return nil, err
	}
	prot, err := protInj.CampaignRandom(opts.ctx(), opts.Samples)
	if err != nil {
		return nil, err
	}

	return &ProtectReport{
		Program:        program,
		BudgetFraction: budgetFraction,
		SelectedInstrs: len(plan.Selected),
		Overhead:       overhead,
		FullOverhead:   fullOverhead,
		BaselineSDC:    base.SDCProb(),
		ProtectedSDC:   prot.SDCProb(),
		DetectionRate:  prot.Rate(fault.Detected),
	}, nil
}

// ExplainTop renders propagation-path explanations for the k most
// SDC-prone instructions of the named benchmark: how much of each
// instruction's predicted SDC probability flows directly to output,
// through corrupted stores chased by the memory sub-model, and through
// flipped branches.
func ExplainTop(program string, k int, opts Options) ([]string, error) {
	opts = opts.withDefaults()
	cfg, err := opts.Model.config()
	if err != nil {
		return nil, err
	}
	m, err := loadProgram(program, "")
	if err != nil {
		return nil, err
	}
	prof, err := profile.Collect(m, profile.Options{Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	model := core.New(prof, cfg)

	var ranked []*ir.Instr
	m.Instrs(func(in *ir.Instr) {
		if in.HasResult() && prof.ExecCount[in] > 0 {
			ranked = append(ranked, in)
		}
	})
	sort.Slice(ranked, func(i, j int) bool {
		a, b := model.InstrSDC(ranked[i]), model.InstrSDC(ranked[j])
		if a != b {
			return a > b
		}
		return ranked[i].ID < ranked[j].ID
	})
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]string, 0, k)
	for _, in := range ranked[:k] {
		out = append(out, model.Explain(in).String())
	}
	return out, nil
}
