// Command protection demonstrates the paper's use case (§VI):
// selectively duplicate the most SDC-prone instructions of a benchmark
// under a performance-overhead budget, guided by the TRIDENT model, and
// verify the SDC reduction with fault injection.
//
// Run with: go run ./examples/protection [benchmark]
package main

import (
	"fmt"
	"os"

	"trident"
)

func main() {
	program := "pathfinder"
	if len(os.Args) > 1 {
		program = os.Args[1]
	}
	if err := run(program); err != nil {
		fmt.Fprintln(os.Stderr, "protection:", err)
		os.Exit(1)
	}
}

func run(program string) error {
	opts := trident.Options{Samples: 2000, Seed: 7, Workers: 4}

	fmt.Printf("protecting %q with TRIDENT-guided selective duplication\n\n", program)
	fmt.Printf("%8s %10s %10s %12s %12s %10s\n",
		"budget", "selected", "overhead", "baseline", "protected", "detected")

	// The paper evaluates 1/3 and 2/3 of the full-duplication cost.
	for _, budget := range []float64{1.0 / 3, 2.0 / 3, 1.0} {
		rep, err := trident.Protect(program, budget, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%7.0f%% %10d %9.2f%% %11.2f%% %11.2f%% %9.2f%%\n",
			budget*100, rep.SelectedInstrs, rep.Overhead*100,
			rep.BaselineSDC*100, rep.ProtectedSDC*100, rep.DetectionRate*100)
	}

	fmt.Println("\nbudget is relative to full duplication; baseline/protected are")
	fmt.Println("FI-measured SDC probabilities (FI is used only for evaluation).")
	return nil
}
