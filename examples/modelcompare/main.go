// Command modelcompare contrasts the full TRIDENT model with the
// paper's two simplified variants (fs and fs+fc) on one benchmark, both
// for the overall SDC probability and for the instruction ranking that
// drives selective protection.
//
// Run with: go run ./examples/modelcompare [benchmark]
package main

import (
	"fmt"
	"os"

	"trident"
)

func main() {
	program := "puremd"
	if len(os.Args) > 1 {
		program = os.Args[1]
	}
	if err := run(program); err != nil {
		fmt.Fprintln(os.Stderr, "modelcompare:", err)
		os.Exit(1)
	}
}

func run(program string) error {
	fi, err := trident.Campaign(program, trident.Options{Samples: 2000, Seed: 17})
	if err != nil {
		return err
	}
	fmt.Printf("benchmark %q, FI ground truth: %.2f%% SDC\n\n", program, fi.SDC*100)

	kinds := []trident.ModelKind{trident.ModelTrident, trident.ModelFSFC, trident.ModelFS}
	reports := make(map[trident.ModelKind]*trident.Report, len(kinds))
	for _, kind := range kinds {
		rep, err := trident.Analyze(program, trident.Options{Model: kind})
		if err != nil {
			return err
		}
		reports[kind] = rep
		fmt.Printf("%-8s overall prediction: %6.2f%%\n", kind, rep.OverallSDC*100)
	}

	// The variants also disagree on *which* instructions matter, which is
	// what selective protection consumes.
	fmt.Println("\ntop-5 instructions per model (the protection frontier):")
	for _, kind := range kinds {
		fmt.Printf("\n  [%s]\n", kind)
		for i, in := range reports[kind].Instrs {
			if i == 5 {
				break
			}
			fmt.Printf("    %-30s SDC %5.1f%%  (%d executions)\n",
				in.Instruction, in.SDC*100, in.ExecCount)
		}
	}
	fmt.Println("\nthe fs and fs+fc variants over-predict because a corrupted store")
	fmt.Println("is assumed to be an SDC; TRIDENT traces it through memory to output.")
	return nil
}
