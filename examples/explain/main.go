// Command explain decomposes TRIDENT's predictions into propagation
// paths. For a
// developer hardening a program, "this instruction is 80% SDC-prone"
// matters less than *why* — which store chains and which branches carry
// the corruption to the output. This example prints the path breakdown
// for the most dangerous instructions of a benchmark.
//
// Run with: go run ./examples/explain [benchmark]
package main

import (
	"fmt"
	"os"

	"trident"
)

func main() {
	program := "nw"
	if len(os.Args) > 1 {
		program = os.Args[1]
	}
	if err := run(program); err != nil {
		fmt.Fprintln(os.Stderr, "explain:", err)
		os.Exit(1)
	}
}

func run(program string) error {
	explanations, err := trident.ExplainTop(program, 5, trident.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("why the top-5 SDC-prone instructions of %q are dangerous:\n\n", program)
	for _, ex := range explanations {
		fmt.Println(ex)
	}
	fmt.Println("reading guide: 'via <store>' paths go through memory (the fm")
	fmt.Println("sub-model chases them store-to-load until the output); 'via")
	fmt.Println("flipped <branch>' paths corrupt state through control-flow")
	fmt.Println("divergence (the fc sub-model's wrongly executed or skipped")
	fmt.Println("stores and corrupted loop-carried registers).")
	return nil
}
