// Command quickstart writes a small program in the textual IR, predicts
// its SDC probabilities with TRIDENT (no fault injection), then
// validates the prediction with an actual fault-injection campaign.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"trident"
)

// program computes a dot product and reports it: a store loop, a
// reduction loop, and a bounds-checking branch — enough structure to
// exercise all three sub-models.
const program = `
module "dotproduct"
global @xs f64 x 16 = [0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5]
global @ys f64 x 16 = [1.0, 0.5, 2.0, 0.25, 3.0, 0.125, 4.0, 1.0]
global @prods f64 x 16

func @main() void {
entry:
  br mul
mul:
  %i = phi i64 [i64 0, entry], [%inc, mul]
  %xp = gep f64, @xs, %i
  %x = load f64, %xp
  %yp = gep f64, @ys, %i
  %y = load f64, %yp
  %prod = fmul %x, %y
  %pp = gep f64, @prods, %i
  store %prod, %pp
  %inc = add %i, i64 1
  %c = icmp slt %inc, i64 16
  condbr %c, mul, rentry
rentry:
  br sum
sum:
  %j = phi i64 [i64 0, rentry], [%jinc, sum]
  %acc = phi f64 [f64 0.0, rentry], [%nacc, sum]
  %qp = gep f64, @prods, %j
  %p = load f64, %qp
  %nacc = fadd %acc, %p
  %jinc = add %j, i64 1
  %jc = icmp slt %jinc, i64 16
  condbr %jc, sum, done
done:
  print %nacc
  ret
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Step 1: model-based prediction — no fault injection.
	report, err := trident.AnalyzeIR(program, trident.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("program %q: %d static instructions, %d dynamic\n",
		report.Program, report.StaticInstrs, report.DynInstrs)
	fmt.Printf("TRIDENT predicted overall SDC probability: %.2f%%\n\n", report.OverallSDC*100)

	fmt.Println("five most SDC-prone instructions (protect these first):")
	for i, in := range report.Instrs {
		if i == 5 {
			break
		}
		fmt.Printf("  %-30s %-22s SDC %5.1f%%  crash %5.1f%%\n",
			in.Instruction, in.Location, in.SDC*100, in.Crash*100)
	}

	// Step 2: ground truth via fault injection.
	fi, err := trident.CampaignIR(program, trident.Options{Samples: 2000, Seed: 42})
	if err != nil {
		return err
	}
	fmt.Printf("\nfault injection (%d single-bit flips):\n", fi.Trials)
	fmt.Printf("  SDC %.2f%% ± %.2f%%   crash %.2f%%   benign %.2f%%\n",
		fi.SDC*100, fi.ErrorBar95*100, fi.Crash*100, fi.Benign*100)
	fmt.Printf("\nmodel vs measurement: %.2f%% predicted, %.2f%% measured\n",
		report.OverallSDC*100, fi.SDC*100)
	return nil
}
