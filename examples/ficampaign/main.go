// Command ficampaign runs LLFI-style statistical fault injection over
// several benchmarks and compares the measured SDC probabilities with
// TRIDENT's predictions — a miniature of the paper's Figure 5.
//
// Run with: go run ./examples/ficampaign
package main

import (
	"fmt"
	"math"
	"os"

	"trident"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ficampaign:", err)
		os.Exit(1)
	}
}

func run() error {
	programs := []string{"pathfinder", "nw", "sad", "libquantum"}
	opts := trident.Options{Samples: 1500, Seed: 13, Workers: 4}

	fmt.Printf("%-12s %10s %10s %10s %10s %10s\n",
		"benchmark", "FI SDC", "±95%", "predicted", "diff", "crash")
	sumDiff := 0.0
	for _, name := range programs {
		fi, err := trident.Campaign(name, opts)
		if err != nil {
			return err
		}
		model, err := trident.Analyze(name, opts)
		if err != nil {
			return err
		}
		diff := math.Abs(model.OverallSDC - fi.SDC)
		sumDiff += diff
		fmt.Printf("%-12s %9.2f%% %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
			name, fi.SDC*100, fi.ErrorBar95*100, model.OverallSDC*100,
			diff*100, fi.Crash*100)
	}
	fmt.Printf("\nmean absolute error: %.2f%% (paper reports 4.75%% on its testbed)\n",
		sumDiff/float64(len(programs))*100)
	return nil
}
