package trident

// This file is the benchmark harness promised by DESIGN.md: one testing.B
// benchmark per paper table and figure, plus the ablation benches for the
// design choices DESIGN.md calls out and micro-benchmarks of the
// substrates. Benchmarks run reduced configurations (fewer FI samples and
// a benchmark subset) so `go test -bench=.` completes in minutes; the
// full-fidelity numbers recorded in EXPERIMENTS.md come from
// `go run ./cmd/experiments` with paper-scale parameters.

import (
	"context"
	"testing"

	"trident/internal/core"
	"trident/internal/experiments"
	"trident/internal/fault"
	"trident/internal/interp"
	"trident/internal/profile"
	"trident/internal/progs"
)

// benchCfg is the reduced configuration shared by the experiment benches.
var benchCfg = experiments.Config{
	Samples:  120,
	PerInstr: 15,
	Seed:     2018,
	Programs: []string{"pathfinder", "nw", "bfs-rodinia"},
	Workers:  4,
}

func BenchmarkTable1Characteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5OverallSDC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2PerInstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6aScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6a(benchCfg, []int{100, 300}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6bScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6b(benchCfg, []int{20, 60}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7PerBenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Protection(b *testing.B) {
	cfg := benchCfg
	cfg.Programs = []string{"pathfinder"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Baselines(b *testing.B) {
	cfg := benchCfg
	cfg.Programs = []string{"pathfinder", "nw"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benches (DESIGN.md §6).

func BenchmarkAblationPruning(b *testing.B) {
	cfg := benchCfg
	cfg.Programs = []string{"pathfinder", "nw"}
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationPruning(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxDivergence > 1e-6 {
			b.Fatalf("pruning changed results by %v", res.MaxDivergence)
		}
	}
}

func BenchmarkAblationValueProfile(b *testing.B) {
	cfg := benchCfg
	cfg.Programs = []string{"pathfinder", "nw"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationValueProfile(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFixpoint(b *testing.B) {
	cfg := benchCfg
	cfg.Programs = []string{"pathfinder", "nw"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFixpoint(cfg, []int{1, 200}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationKnapsack(b *testing.B) {
	cfg := benchCfg
	cfg.Programs = []string{"pathfinder"}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationKnapsack(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Substrate micro-benchmarks.

// BenchmarkInterpreterThroughput measures raw interpreter speed in dynamic
// instructions per second (reported as ns/op over one pathfinder run).
func BenchmarkInterpreterThroughput(b *testing.B) {
	p, err := progs.ByName("pathfinder")
	if err != nil {
		b.Fatal(err)
	}
	m := p.Build()
	res, err := interp.Run(m, interp.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(res.DynInstrs)) // bytes/s reads as instructions/s
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(m, interp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfilingPhase measures the fixed cost of TRIDENT's profiling
// phase on one benchmark.
func BenchmarkProfilingPhase(b *testing.B) {
	p, err := progs.ByName("pathfinder")
	if err != nil {
		b.Fatal(err)
	}
	m := p.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.Collect(m, profile.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelAllInstructions measures TRIDENT's inference phase: per-
// instruction SDC predictions for every executed instruction.
func BenchmarkModelAllInstructions(b *testing.B) {
	p, err := progs.ByName("pathfinder")
	if err != nil {
		b.Fatal(err)
	}
	m := p.Build()
	prof, err := profile.Collect(m, profile.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model := core.New(prof, core.TridentConfig())
		model.OverallSDC(0, 1)
	}
}

// Campaign benchmarks: the legacy engine re-interprets every trial's
// pre-fault prefix from instruction zero; the snapshot engine resumes
// from the nearest golden-run snapshot. Same seed, same trials, same
// outcomes — the only difference is wall-clock. cmd/fibench runs the
// same comparison standalone and records it in BENCH_fi.json.

func benchCampaign(b *testing.B, program string, interval uint64) {
	p, err := progs.ByName(program)
	if err != nil {
		b.Fatal(err)
	}
	inj, err := fault.New(p.Build(), fault.Options{
		Seed: 7, Workers: 4, SnapshotInterval: interval,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inj.CampaignRandom(context.Background(), 150); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignLegacy(b *testing.B) {
	for _, prog := range []string{"pathfinder", "nw", "sad"} {
		b.Run(prog, func(b *testing.B) { benchCampaign(b, prog, 0) })
	}
}

func BenchmarkCampaignSnapshot(b *testing.B) {
	for _, prog := range []string{"pathfinder", "nw", "sad"} {
		b.Run(prog, func(b *testing.B) { benchCampaign(b, prog, 2048) })
	}
}

// BenchmarkSingleInjection measures the cost of one fault-injection trial
// — the unit FI cost that makes campaigns expensive and models attractive.
func BenchmarkSingleInjection(b *testing.B) {
	p, err := progs.ByName("pathfinder")
	if err != nil {
		b.Fatal(err)
	}
	inj, err := fault.New(p.Build(), fault.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	targets := inj.Targets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := targets[i%len(targets)]
		if _, err := inj.Inject(context.Background(), target, 1, i%8); err != nil {
			b.Fatal(err)
		}
	}
}
