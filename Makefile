GO ?= go

.PHONY: build test check race bench bench-all doc fuzz-smoke servercheck cachecheck prunecheck stratcheck adaptcheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# doc is the documentation lint: formatting must be canonical, vet must
# be clean, and every package (internal, cmd, examples, root) must carry
# a package-level doc comment.
doc:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	bash scripts/doccheck.sh

# check is the CI gate: vet everything, then race-test the concurrent
# campaign engine, the interpreters it drives (legacy and decoded,
# including the engine-parity and pooled-frame hygiene suites), the
# decoded lowering pass, and the cross-check harness that compares them
# against the reference evaluator. The race run includes the snapshot
# round-trip suite (internal/interp) and the differential suites
# comparing snapshot-replay and decoded-engine campaigns against legacy
# full re-execution (internal/fault). The decoded crosscheck tier sweeps
# a random corpus through the three-way oracle with the decoded engine
# driving the campaign-level checks. The fuzz smoke run gives each
# native fuzz target a bounded slice of random exploration, and the
# fibench smoke run then proves all engines still agree end-to-end on a
# short real campaign, that the telemetry layer stays within its ≤3%
# overhead budget (see OBSERVABILITY.md), and that the decoded engine
# keeps a measurable lead over the snapshot engine (the 1.1x smoke floor
# is deliberately below the ≥1.4x geomean BENCH_fi.json records, so CI
# jitter on one kernel does not flake the gate). The servercheck drill
# then attacks a live fiserver: it SIGKILLs a shard worker mid-campaign,
# SIGTERMs the server (expecting exit 143 and the job re-queued on
# disk), restarts over the same spool, and requires the resumed merged
# result to be byte-identical to a clean run of the same campaign. The
# cachecheck drill closes the loop on the compositional profile cache:
# run, edit one kernel function, re-run, and require that only the
# edited function re-injected and the composed result byte-compares
# with a from-scratch campaign (the cache/hashutil packages also run
# under -race alongside the other concurrent tiers, and the bitlive
# pass runs under -race too — its Report is shared by campaign workers).
# The prunecheck drill closes the loop on bit-liveness pruning: pruned
# and unpruned campaigns through the real CLI, on both engines, must
# report identical summaries and identical per-trial transcripts
# (DESIGN.md §5i, scripts/prunecheck.sh). The stratcheck drill does the
# same for stratified sampling: the thinned campaign's transcript must
# be a subset of the plain one and the reweighted estimate must land on
# the plain campaign's SDC probability (scripts/stratcheck.sh). The
# adaptcheck drill closes the loop on adaptive (Neyman) allocation:
# pilot-derived plans must replay byte-identically from their own
# checkpoints, adaptive transcripts must be fenced from plain and
# stratified ones, and cache-seeded plans must skip the pilot while
# composing byte-identically to a cold run (scripts/adaptcheck.sh). The
# stats package races alongside the other tiers — its weighted tallies
# are accumulated by concurrent campaign code.
check: build doc
	$(GO) test -race ./internal/fault/... ./internal/interp/... ./internal/decoded/... ./internal/telemetry/... ./internal/server/... ./internal/sigctx/... ./internal/cache/... ./internal/hashutil/... ./internal/bitlive/... ./internal/stats/...
	$(GO) test -race -short ./internal/crosscheck/...
	$(GO) run ./cmd/crosscheck -n 60 -seed 77 -kernels=false -engine decoded
	$(MAKE) fuzz-smoke
	$(GO) run ./cmd/fibench -programs pathfinder -n 300 -repeats 5 -max-overhead 0.03 -min-decoded-speedup 1.1 -out /dev/null
	$(MAKE) servercheck
	$(MAKE) cachecheck
	$(MAKE) prunecheck
	$(MAKE) stratcheck
	$(MAKE) adaptcheck

# servercheck is the campaign server's kill drill; see
# scripts/servercheck.sh for the exact choreography.
servercheck:
	bash scripts/servercheck.sh

# cachecheck is the compositional cache's edit-and-rerun drill; see
# scripts/cachecheck.sh for the exact choreography.
cachecheck:
	bash scripts/cachecheck.sh

# prunecheck is the bit-liveness pruning drill: pruned vs unpruned
# campaigns through the real CLI must be bit-identical; see
# scripts/prunecheck.sh for the exact choreography.
prunecheck:
	bash scripts/prunecheck.sh

# stratcheck is the stratified-sampling drill: thinned campaigns through
# the real CLI must report unbiased weighted estimates over a subset
# transcript, and mismatched resumes must be refused; see
# scripts/stratcheck.sh for the exact choreography.
stratcheck:
	bash scripts/stratcheck.sh

# adaptcheck is the adaptive-stratification drill: pilot-derived plans
# must replay deterministically, and cached profiles must buy back the
# pilot without changing a byte of the composed result; see
# scripts/adaptcheck.sh for the exact choreography.
adaptcheck:
	bash scripts/adaptcheck.sh

# fuzz-smoke runs each native fuzz target for a bounded slice (~10s):
# long enough to mutate past the seed corpus, short enough for CI. Deep
# fuzzing is manual: go test ./internal/crosscheck -fuzz <target>.
fuzz-smoke:
	$(GO) test ./internal/crosscheck -run '^$$' -fuzz FuzzInterpOracle -fuzztime 10s
	$(GO) test ./internal/crosscheck -run '^$$' -fuzz FuzzParserRoundTrip -fuzztime 10s
	$(GO) test ./internal/crosscheck -run '^$$' -fuzz FuzzBitliveSound -fuzztime 10s
	$(GO) test ./internal/cache -run '^$$' -fuzz FuzzCacheKeyCanonical -fuzztime 10s
	$(GO) test ./internal/stats -run '^$$' -fuzz FuzzWeightedTally -fuzztime 10s

# bench measures the snapshot-replay, decoded and pruned campaign
# engines against the legacy path plus the telemetry layer's overhead
# across all 11 paper kernels and the narrow-output kernels the pruning
# pass targets (committed as BENCH_fi.json), and runs the campaign
# benchmarks. The pruning gate requires a ≥1.2x equal-CI speedup on at
# least 3 kernels (the narrow-output ones clear it; the paper kernels'
# near-zero masked fractions are expected). The stratification gate
# mirrors it: at least 3 kernels must show a ≥1.1x weighted-CI shrink
# at equal executed trials under the default plan. The adaptive gate
# requires a ≥1.05x shrink that also matches or beats the static plan's
# on at least 3 kernels — pilot cost included, so the floor sits below
# the static gate's on purpose.
bench:
	$(GO) run ./cmd/fibench -programs libquantum,blackscholes,sad,bfs-parboil,hercules,lulesh,puremd,nw,pathfinder,hotspot,bfs-rodinia,rgb2gray,nibblepack,boxblur -repeats 3 -min-pruned-ci-speedup 1.2 -min-strat-ci-shrink 1.1 -min-adapt-ci-shrink 1.05 -out BENCH_fi.json
	$(GO) test -bench='BenchmarkCampaign' -benchmem .

# bench-all runs the full benchmark harness (paper tables, ablations,
# substrates); takes several minutes.
bench-all:
	$(GO) test -bench=. -benchmem

race:
	$(GO) test -race ./...
