GO ?= go

.PHONY: build test check race bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: vet everything, then race-test the concurrent
# campaign engine and the interpreter it drives. The race run includes
# the snapshot round-trip suite (internal/interp) and the differential
# suite comparing snapshot-replay campaigns against legacy full
# re-execution (internal/fault). The fibench smoke run then proves both
# engines still agree end-to-end on one short real campaign.
check: build
	$(GO) vet ./...
	$(GO) test -race ./internal/fault/... ./internal/interp/...
	$(GO) run ./cmd/fibench -programs pathfinder -n 60 -out /dev/null

# bench measures the snapshot-replay campaign engine against the legacy
# path (committed as BENCH_fi.json) and runs the campaign benchmarks.
bench:
	$(GO) run ./cmd/fibench -out BENCH_fi.json
	$(GO) test -bench='BenchmarkCampaign' -benchmem .

# bench-all runs the full benchmark harness (paper tables, ablations,
# substrates); takes several minutes.
bench-all:
	$(GO) test -bench=. -benchmem

race:
	$(GO) test -race ./...
