GO ?= go

.PHONY: build test check race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: vet everything, then race-test the concurrent
# campaign engine and the interpreter it drives.
check: build
	$(GO) vet ./...
	$(GO) test -race ./internal/fault/... ./internal/interp/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
