GO ?= go

.PHONY: build test check race bench bench-all doc fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# doc is the documentation lint: formatting must be canonical, vet must
# be clean, and every package (internal, cmd, examples, root) must carry
# a package-level doc comment.
doc:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	sh scripts/doccheck.sh

# check is the CI gate: vet everything, then race-test the concurrent
# campaign engine, the interpreter it drives, and the cross-check
# harness that compares them against the reference evaluator. The race
# run includes the snapshot round-trip suite (internal/interp) and the
# differential suite comparing snapshot-replay campaigns against legacy
# full re-execution (internal/fault). The fuzz smoke run gives each
# native fuzz target a bounded slice of random exploration, and the
# fibench smoke run then proves both engines still agree end-to-end on a
# short real campaign AND that the telemetry layer stays within its ≤3%
# overhead budget (see OBSERVABILITY.md).
check: build doc
	$(GO) test -race ./internal/fault/... ./internal/interp/... ./internal/telemetry/...
	$(GO) test -race -short ./internal/crosscheck/...
	$(MAKE) fuzz-smoke
	$(GO) run ./cmd/fibench -programs pathfinder -n 300 -repeats 5 -max-overhead 0.03 -out /dev/null

# fuzz-smoke runs each native fuzz target for a bounded slice (~10s):
# long enough to mutate past the seed corpus, short enough for CI. Deep
# fuzzing is manual: go test ./internal/crosscheck -fuzz <target>.
fuzz-smoke:
	$(GO) test ./internal/crosscheck -run '^$$' -fuzz FuzzInterpOracle -fuzztime 10s
	$(GO) test ./internal/crosscheck -run '^$$' -fuzz FuzzParserRoundTrip -fuzztime 10s

# bench measures the snapshot-replay campaign engine against the legacy
# path plus the telemetry layer's overhead (committed as BENCH_fi.json)
# and runs the campaign benchmarks.
bench:
	$(GO) run ./cmd/fibench -repeats 3 -out BENCH_fi.json
	$(GO) test -bench='BenchmarkCampaign' -benchmem .

# bench-all runs the full benchmark harness (paper tables, ablations,
# substrates); takes several minutes.
bench-all:
	$(GO) test -bench=. -benchmem

race:
	$(GO) test -race ./...
