GO ?= go

.PHONY: build test check race bench bench-all doc

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# doc is the documentation lint: formatting must be canonical, vet must
# be clean, and every package (internal, cmd, examples, root) must carry
# a package-level doc comment.
doc:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then \
		echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	sh scripts/doccheck.sh

# check is the CI gate: vet everything, then race-test the concurrent
# campaign engine and the interpreter it drives. The race run includes
# the snapshot round-trip suite (internal/interp) and the differential
# suite comparing snapshot-replay campaigns against legacy full
# re-execution (internal/fault). The fibench smoke run then proves both
# engines still agree end-to-end on a short real campaign AND that the
# telemetry layer stays within its ≤3% overhead budget (see
# OBSERVABILITY.md).
check: build doc
	$(GO) test -race ./internal/fault/... ./internal/interp/... ./internal/telemetry/...
	$(GO) run ./cmd/fibench -programs pathfinder -n 300 -repeats 5 -max-overhead 0.03 -out /dev/null

# bench measures the snapshot-replay campaign engine against the legacy
# path plus the telemetry layer's overhead (committed as BENCH_fi.json)
# and runs the campaign benchmarks.
bench:
	$(GO) run ./cmd/fibench -repeats 3 -out BENCH_fi.json
	$(GO) test -bench='BenchmarkCampaign' -benchmem .

# bench-all runs the full benchmark harness (paper tables, ablations,
# substrates); takes several minutes.
bench-all:
	$(GO) test -bench=. -benchmem

race:
	$(GO) test -race ./...
